package streampart

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/hashpart"
)

func TestFennelProducesValidPartitioning(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	for _, p := range []int{2, 8, 33} {
		pt, err := Fennel{Seed: 1}.Partition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.Validate(g); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
	}
}

func TestFennelBeatsRandomOnSkewedGraph(t *testing.T) {
	// FENNEL's whole point is to beat hashing on quality while staying
	// streaming; on a skewed graph its RF must be clearly below Random's.
	g := gen.RMAT(12, 16, 5)
	const p = 16
	fpt, err := Fennel{Seed: 2}.Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rpt, err := hashpart.Random{Seed: 2}.Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	fq := fpt.Measure(g)
	rq := rpt.Measure(g)
	if fq.ReplicationFactor >= rq.ReplicationFactor*0.9 {
		t.Errorf("FENNEL RF %.3f not clearly below Random RF %.3f",
			fq.ReplicationFactor, rq.ReplicationFactor)
	}
}

func TestFennelBalanceStaysBounded(t *testing.T) {
	// The convex load cost must keep edge balance within a small factor even
	// though FENNEL has no hard cap.
	g := gen.RMAT(11, 16, 7)
	pt, err := Fennel{Seed: 3}.Partition(g, 32)
	if err != nil {
		t.Fatal(err)
	}
	q := pt.Measure(g)
	if q.EdgeBalance > 1.6 {
		t.Errorf("edge balance %.3f too loose", q.EdgeBalance)
	}
}

func TestFennelGammaExtremes(t *testing.T) {
	// Larger γ penalizes imbalance harder: balance at γ=4 must be at least
	// as good as at γ=1.05, and both must remain valid partitionings.
	g := gen.RMAT(10, 8, 9)
	loose, err := Fennel{Gamma: 1.05, Seed: 4}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Fennel{Gamma: 4, Seed: 4}.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := loose.Validate(g); err != nil {
		t.Fatal(err)
	}
	if err := tight.Validate(g); err != nil {
		t.Fatal(err)
	}
	lb := loose.Measure(g).EdgeBalance
	tb := tight.Measure(g).EdgeBalance
	if tb > lb+0.05 {
		t.Errorf("γ=4 balance %.3f worse than γ=1.05 balance %.3f", tb, lb)
	}
}

func TestFennelDeterministicForSeed(t *testing.T) {
	g := gen.RMAT(9, 8, 1)
	a, _ := Fennel{Seed: 42}.Partition(g, 8)
	b, _ := Fennel{Seed: 42}.Partition(g, 8)
	for i := range a.Owner {
		if a.Owner[i] != b.Owner[i] {
			t.Fatalf("edge %d: %d != %d", i, a.Owner[i], b.Owner[i])
		}
	}
}
