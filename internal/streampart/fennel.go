package streampart

import (
	"context"
	"math"
	"math/rand"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// Fennel is FENNEL-based streaming *edge* partitioning (§2.2 cites
// Tsourakakis et al., WSDM'14 via Bourse et al., KDD'14 for the edge-
// partitioning adaptation). Each edge (u,v) is placed on the partition q
// maximizing
//
//	score(q) = g(u,q) + g(v,q) − γ·ν·size_q^(γ−1)/|E|^(γ−1)·…
//
// concretely the interpolated objective of Bourse et al.: the replication
// gain of reusing partitions that already host an endpoint, minus the
// marginal balance cost c(size_q+1) − c(size_q) of the convex load cost
// c(x) = ν·x^γ. Gamma defaults to the FENNEL paper's 1.5 and ν is chosen so
// the cost gradient is O(1) at the balanced load |E|/|P|.
type Fennel struct {
	// Gamma is the load-cost exponent γ > 1 (default 1.5).
	Gamma float64
	// Seed drives the stream order.
	Seed int64
}

// Name returns the display label.
func (Fennel) Name() string { return "FENNEL" }

// Partition computes the assignment without cancellation support.
func (f Fennel) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return f.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is the streaming core; it polls ctx every
// partition.CheckEvery edges.
func (f Fennel) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	gamma := f.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	totalE := g.NumEdges()
	p := partition.New(numParts, totalE)
	replicas := make([]bitset.Set, g.NumVertices())
	for v := range replicas {
		replicas[v] = bitset.New(numParts)
	}
	sizes := make([]int64, numParts)
	// ν normalizes the marginal cost so that at the balanced load
	// m = |E|/|P| the gradient γ·ν·m^(γ−1) equals 1 — one replica's worth.
	mean := float64(totalE) / float64(numParts)
	if mean < 1 {
		mean = 1
	}
	nu := 1 / (gamma * math.Pow(mean, gamma-1))

	rng := rand.New(rand.NewSource(f.Seed))
	order := rng.Perm(int(totalE))
	for n, i := range order {
		if n%partition.CheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := g.Edge(int64(i))
		best := int32(0)
		bestScore := math.Inf(-1)
		for q := 0; q < numParts; q++ {
			var gain float64
			if replicas[e.U].Has(q) {
				gain++
			}
			if replicas[e.V].Has(q) {
				gain++
			}
			// Marginal convex cost of adding one edge to q:
			// ν·((s+1)^γ − s^γ) ≈ γ·ν·s^(γ−1), computed exactly.
			s := float64(sizes[q])
			cost := nu * (math.Pow(s+1, gamma) - math.Pow(s, gamma))
			if sc := gain - cost; sc > bestScore {
				bestScore = sc
				best = int32(q)
			}
		}
		assign(p, replicas, sizes, i, e, best)
	}
	return p, nil
}
