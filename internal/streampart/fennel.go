package streampart

import (
	"context"
	"math"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// Fennel is FENNEL-based streaming *edge* partitioning (§2.2 cites
// Tsourakakis et al., WSDM'14 via Bourse et al., KDD'14 for the edge-
// partitioning adaptation). Each edge (u,v) is placed on the partition q
// maximizing
//
//	score(q) = g(u,q) + g(v,q) − γ·ν·size_q^(γ−1)/|E|^(γ−1)·…
//
// concretely the interpolated objective of Bourse et al.: the replication
// gain of reusing partitions that already host an endpoint, minus the
// marginal balance cost c(size_q+1) − c(size_q) of the convex load cost
// c(x) = ν·x^γ. Gamma defaults to the FENNEL paper's 1.5 and ν is chosen so
// the cost gradient is O(1) at the balanced load |E|/|P|. The core is a
// true single pass over the source with |V|-dense replica state.
type Fennel struct {
	// Gamma is the load-cost exponent γ > 1 (default 1.5).
	Gamma float64
	// Seed drives the stream shuffle of the legacy Partition shim (see
	// HDRF).
	Seed int64
}

// Name returns the display label.
func (Fennel) Name() string { return "FENNEL" }

// Partition is the deprecated v1 shim over the shuffled stream core.
func (f Fennel) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return partition.Legacy(g, numParts, shuffled(f.Stream, f.Seed))
}

// Stream is the streaming core; it polls ctx every partition.CheckEvery
// edges.
func (f Fennel) Stream(ctx context.Context, src graph.Source, numParts int, st *partition.Stats) (*partition.Partitioning, error) {
	gamma := f.Gamma
	if gamma == 0 {
		gamma = 1.5
	}
	nv, ne, err := partition.Counts(ctx, src)
	if err != nil {
		return nil, err
	}
	p := partition.New(numParts, ne)
	replicas := partition.NewReplicaSets(numParts, nv)
	sizes := make([]int64, numParts)
	// ν normalizes the marginal cost so that at the balanced load
	// m = |E|/|P| the gradient γ·ν·m^(γ−1) equals 1 — one replica's worth.
	mean := float64(ne) / float64(numParts)
	if mean < 1 {
		mean = 1
	}
	nu := 1 / (gamma * math.Pow(mean, gamma-1))
	st.PeakMemBytes += replicas.Bytes() + int64(numParts)*8 + graph.SourceBufferBytes

	err = partition.EachEdge(ctx, src, func(pos int64, k uint64) error {
		u, v := graph.Vertex(k>>32), graph.Vertex(k)
		ru, rv := replicas.Row(u), replicas.Row(v)
		best := int32(0)
		bestScore := math.Inf(-1)
		for q := 0; q < numParts; q++ {
			var gain float64
			if ru.Has(q) {
				gain++
			}
			if rv.Has(q) {
				gain++
			}
			// Marginal convex cost of adding one edge to q:
			// ν·((s+1)^γ − s^γ) ≈ γ·ν·s^(γ−1), computed exactly.
			s := float64(sizes[q])
			cost := nu * (math.Pow(s+1, gamma) - math.Pow(s, gamma))
			if sc := gain - cost; sc > bestScore {
				bestScore = sc
				best = int32(q)
			}
		}
		assign(p, replicas, sizes, pos, u, v, best)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}
