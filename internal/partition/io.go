package partition

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Serialization of partitionings. The binary format is the tool-to-tool
// interchange (cmd/dnepart writes it, downstream loaders read it); the text
// format ("edgeIndex owner" per line) matches what the public partitioner
// releases this repo reproduces ship, so results can be diffed against them.

// binMagic identifies the binary partitioning format ("DNP1").
const binMagic = 0x444e5031

// maxPrealloc caps slice preallocation driven by untrusted header counts: a
// hostile edge count past this bound grows incrementally and fails on the
// short read instead of attempting a huge up-front allocation.
const maxPrealloc = 1 << 20

// maxParts bounds the header part count: anything above this is a corrupt
// or hostile file, not a plausible partitioning.
const maxParts = 1 << 24

// ioPageOwners is the number of owners batched per binary read/write (16 KiB).
const ioPageOwners = 4096

// WriteBinary writes p as: magic, numParts (uint32), numEdges (uint64), then
// one little-endian int32 owner per edge, batched into page-sized writes.
func WriteBinary(w io.Writer, p *Partitioning) error {
	bw := bufio.NewWriter(w)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], binMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(p.NumParts))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(p.Owner)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, ioPageOwners*4)
	for _, o := range p.Owner {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(o))
		if len(buf) == cap(buf) {
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the format written by WriteBinary. The header is treated
// as untrusted: the part count is bounded, preallocation is capped, and
// every owner is range-checked, so a truncated or corrupt file errors
// instead of producing an invalid partitioning.
func ReadBinary(r io.Reader) (*Partitioning, error) {
	br := bufio.NewReader(r)
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("partition: reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != binMagic {
		return nil, fmt.Errorf("partition: bad magic")
	}
	numParts := int(binary.LittleEndian.Uint32(hdr[4:]))
	numEdges := binary.LittleEndian.Uint64(hdr[8:])
	if numParts <= 0 || numParts > maxParts {
		return nil, fmt.Errorf("partition: invalid part count %d", numParts)
	}
	prealloc := numEdges
	if prealloc > maxPrealloc {
		prealloc = maxPrealloc
	}
	owner := make([]int32, 0, prealloc)
	page := make([]byte, ioPageOwners*4)
	for done := uint64(0); done < numEdges; {
		chunk := uint64(ioPageOwners)
		if rem := numEdges - done; rem < chunk {
			chunk = rem
		}
		b := page[:chunk*4]
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("partition: reading owner %d: %w", done, err)
		}
		for i := uint64(0); i < chunk; i++ {
			o := int32(binary.LittleEndian.Uint32(b[i*4:]))
			if o != None && (o < 0 || int(o) >= numParts) {
				return nil, fmt.Errorf("partition: owner %d out of range at edge %d", o, done+i)
			}
			owner = append(owner, o)
		}
		done += chunk
	}
	return &Partitioning{NumParts: numParts, Owner: owner}, nil
}

// WriteText writes "edgeIndex owner" lines preceded by a header comment.
func WriteText(w io.Writer, p *Partitioning) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# parts=%d edges=%d\n", p.NumParts, len(p.Owner)); err != nil {
		return err
	}
	for i, o := range p.Owner {
		if _, err := fmt.Fprintf(bw, "%d %d\n", i, o); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText reads the format written by WriteText. Lines may appear in any
// order; missing edges stay None.
func ReadText(r io.Reader) (*Partitioning, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	numParts, numEdges := 0, int64(-1)
	var p *Partitioning
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '#' {
			// Parse "parts=N edges=M" tokens if present.
			for _, f := range strings.Fields(text[1:]) {
				if v, ok := strings.CutPrefix(f, "parts="); ok {
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("partition: line %d: %v", line, err)
					}
					numParts = n
				}
				if v, ok := strings.CutPrefix(f, "edges="); ok {
					n, err := strconv.ParseInt(v, 10, 64)
					if err != nil {
						return nil, fmt.Errorf("partition: line %d: %v", line, err)
					}
					numEdges = n
				}
			}
			continue
		}
		if p == nil {
			if numParts <= 0 || numEdges < 0 {
				return nil, fmt.Errorf("partition: line %d: data before '# parts=N edges=M' header", line)
			}
			p = New(numParts, numEdges)
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("partition: line %d: want 'edge owner', got %q", line, text)
		}
		idx, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("partition: line %d: %v", line, err)
		}
		own, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("partition: line %d: %v", line, err)
		}
		if idx < 0 || idx >= numEdges {
			return nil, fmt.Errorf("partition: line %d: edge index %d out of range", line, idx)
		}
		if own != int64(None) && (own < 0 || own >= int64(numParts)) {
			return nil, fmt.Errorf("partition: line %d: owner %d out of range", line, own)
		}
		p.Owner[idx] = int32(own)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("partition: scanning: %w", err)
	}
	if p == nil {
		if numParts <= 0 || numEdges < 0 {
			return nil, fmt.Errorf("partition: empty input")
		}
		p = New(numParts, numEdges)
	}
	return p, nil
}
