package partition

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func samplePartitioning() *Partitioning {
	p := New(4, 6)
	copy(p.Owner, []int32{0, 1, 2, 3, 0, None})
	return p
}

func TestBinaryRoundTrip(t *testing.T) {
	p := samplePartitioning()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParts != p.NumParts || len(got.Owner) != len(p.Owner) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.NumParts, len(got.Owner), p.NumParts, len(p.Owner))
	}
	for i := range p.Owner {
		if got.Owner[i] != p.Owner[i] {
			t.Fatalf("owner[%d] = %d, want %d", i, got.Owner[i], p.Owner[i])
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	p := samplePartitioning()
	var buf bytes.Buffer
	if err := WriteText(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Owner {
		if got.Owner[i] != p.Owner[i] {
			t.Fatalf("owner[%d] = %d, want %d", i, got.Owner[i], p.Owner[i])
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a partitioning file")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
}

func TestReadBinaryRejectsOutOfRangeOwner(t *testing.T) {
	p := samplePartitioning()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the first owner to 99 (> numParts).
	b[16] = 99
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Error("out-of-range owner accepted")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"0 1\n",                          // data before header
		"# parts=4 edges=2\n0 1\n5 2\n",  // index out of range
		"# parts=4 edges=2\n0 9\n",       // owner out of range
		"# parts=4 edges=2\nzero one\n",  // non-numeric
		"# parts=4 edges=2\n0 1 extra\n", // wrong field count
		"",                               // empty
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestReadTextMissingLinesStayNone(t *testing.T) {
	got, err := ReadText(strings.NewReader("# parts=2 edges=3\n1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner[0] != None || got.Owner[1] != 0 || got.Owner[2] != None {
		t.Fatalf("owners %v", got.Owner)
	}
}

func TestQuickBinaryRoundTripAnyOwners(t *testing.T) {
	f := func(raw []uint8, partsRaw uint8) bool {
		parts := int(partsRaw%16) + 1
		p := New(parts, int64(len(raw)))
		for i, r := range raw {
			if r%5 == 0 {
				p.Owner[i] = None
			} else {
				p.Owner[i] = int32(int(r) % parts)
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, p); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		for i := range p.Owner {
			if got.Owner[i] != p.Owner[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
