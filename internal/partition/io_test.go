package partition

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"testing/quick"
)

func samplePartitioning() *Partitioning {
	p := New(4, 6)
	copy(p.Owner, []int32{0, 1, 2, 3, 0, None})
	return p
}

func TestBinaryRoundTrip(t *testing.T) {
	p := samplePartitioning()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParts != p.NumParts || len(got.Owner) != len(p.Owner) {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d", got.NumParts, len(got.Owner), p.NumParts, len(p.Owner))
	}
	for i := range p.Owner {
		if got.Owner[i] != p.Owner[i] {
			t.Fatalf("owner[%d] = %d, want %d", i, got.Owner[i], p.Owner[i])
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	p := samplePartitioning()
	var buf bytes.Buffer
	if err := WriteText(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Owner {
		if got.Owner[i] != p.Owner[i] {
			t.Fatalf("owner[%d] = %d, want %d", i, got.Owner[i], p.Owner[i])
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a partitioning file")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Error("empty accepted")
	}
}

func TestReadBinaryRejectsOutOfRangeOwner(t *testing.T) {
	p := samplePartitioning()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the first owner to 99 (> numParts).
	b[16] = 99
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Error("out-of-range owner accepted")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"0 1\n",                          // data before header
		"# parts=4 edges=2\n0 1\n5 2\n",  // index out of range
		"# parts=4 edges=2\n0 9\n",       // owner out of range
		"# parts=4 edges=2\nzero one\n",  // non-numeric
		"# parts=4 edges=2\n0 1 extra\n", // wrong field count
		"",                               // empty
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestReadTextMissingLinesStayNone(t *testing.T) {
	got, err := ReadText(strings.NewReader("# parts=2 edges=3\n1 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Owner[0] != None || got.Owner[1] != 0 || got.Owner[2] != None {
		t.Fatalf("owners %v", got.Owner)
	}
}

// TestReadBinaryRejectsTruncation: every strict prefix errors.
func TestReadBinaryRejectsTruncation(t *testing.T) {
	p := New(4, 1000)
	for i := range p.Owner {
		p.Owner[i] = int32(i % 4)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 8, 15, 16, 18, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// TestReadBinaryHostileHeader: absurd part/edge counts must error (on the
// bound check or the short read) without a huge up-front allocation.
func TestReadBinaryHostileHeader(t *testing.T) {
	mk := func(parts uint32, edges uint64) []byte {
		var hdr [16]byte
		binary.LittleEndian.PutUint32(hdr[0:], binMagic)
		binary.LittleEndian.PutUint32(hdr[4:], parts)
		binary.LittleEndian.PutUint64(hdr[8:], edges)
		return append(hdr[:], make([]byte, 64)...)
	}
	if _, err := ReadBinary(bytes.NewReader(mk(1<<30, 4))); err == nil {
		t.Error("absurd part count accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(mk(4, 1<<40))); err == nil {
		t.Error("hostile edge count accepted")
	}
}

// TestBinaryLargeRoundTrip crosses the write-side page boundary so the
// batched writer's flush path is exercised.
func TestBinaryLargeRoundTrip(t *testing.T) {
	p := New(7, ioPageOwners+100)
	for i := range p.Owner {
		if i%11 == 0 {
			p.Owner[i] = None
		} else {
			p.Owner[i] = int32(i % 7)
		}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumParts != p.NumParts || len(got.Owner) != len(p.Owner) {
		t.Fatalf("shape mismatch")
	}
	for i := range p.Owner {
		if got.Owner[i] != p.Owner[i] {
			t.Fatalf("owner[%d] = %d, want %d", i, got.Owner[i], p.Owner[i])
		}
	}
}

func TestQuickBinaryRoundTripAnyOwners(t *testing.T) {
	f := func(raw []uint8, partsRaw uint8) bool {
		parts := int(partsRaw%16) + 1
		p := New(parts, int64(len(raw)))
		for i, r := range raw {
			if r%5 == 0 {
				p.Owner[i] = None
			} else {
				p.Owner[i] = int32(int(r) % parts)
			}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, p); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		for i := range p.Owner {
			if got.Owner[i] != p.Owner[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
