// Package partition defines the result type shared by all edge partitioners
// and the quality metrics used throughout the paper's evaluation: replication
// factor (Eq. 1), edge balance and vertex balance (§7.6).
package partition

import (
	"fmt"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/graph"
)

// None marks an unassigned edge.
const None int32 = -1

// Partitioning is a |P|-way edge partitioning of a graph: Owner[i] is the
// partition id of the i-th canonical edge of the graph it was computed for.
type Partitioning struct {
	NumParts int
	Owner    []int32 // len == g.NumEdges(); values in [0,NumParts) or None
}

// New returns a Partitioning with every edge unassigned.
func New(numParts int, numEdges int64) *Partitioning {
	owner := make([]int32, numEdges)
	for i := range owner {
		owner[i] = None
	}
	return &Partitioning{NumParts: numParts, Owner: owner}
}

// Validate checks that p is a complete, in-range assignment for g.
func (p *Partitioning) Validate(g *graph.Graph) error {
	if int64(len(p.Owner)) != g.NumEdges() {
		return fmt.Errorf("partition: owner length %d != |E| %d", len(p.Owner), g.NumEdges())
	}
	for i, o := range p.Owner {
		if o == None {
			return fmt.Errorf("partition: edge %d unassigned", i)
		}
		if o < 0 || int(o) >= p.NumParts {
			return fmt.Errorf("partition: edge %d has out-of-range owner %d", i, o)
		}
	}
	return nil
}

// EdgeCounts returns |Ep| for every partition p.
func (p *Partitioning) EdgeCounts() []int64 {
	counts := make([]int64, p.NumParts)
	for _, o := range p.Owner {
		if o != None {
			counts[o]++
		}
	}
	return counts
}

// Quality bundles the paper's partitioning-quality metrics.
type Quality struct {
	ReplicationFactor float64 // Eq. (1): (1/|V|) Σp |V(Ep)|
	VertexCuts        int64   // Σp |V(Ep)| − |covered vertices|
	EdgeBalance       float64 // max |Ep| / mean |Ep|
	VertexBalance     float64 // max |V(Ep)| / mean |V(Ep)|
	MaxPartEdges      int64
	Replicas          int64 // Σp |V(Ep)|
}

// Measure computes Quality for p over g. Unassigned edges are ignored (use
// Validate first if completeness matters).
func (p *Partitioning) Measure(g *graph.Graph) Quality {
	n := int(g.NumVertices())
	sets := make([]bitset.Set, n)
	for v := range sets {
		sets[v] = bitset.New(p.NumParts)
	}
	edgeCounts := make([]int64, p.NumParts)
	for i, o := range p.Owner {
		if o == None {
			continue
		}
		e := g.Edge(int64(i))
		sets[e.U].Set(int(o))
		sets[e.V].Set(int(o))
		edgeCounts[o]++
	}
	var replicas, covered int64
	vertCounts := make([]int64, p.NumParts)
	for v := 0; v < n; v++ {
		c := sets[v].Count()
		if c > 0 {
			covered++
		}
		replicas += int64(c)
		sets[v].ForEach(func(q int) { vertCounts[q]++ })
	}
	q := Quality{
		Replicas:   replicas,
		VertexCuts: replicas - covered,
	}
	if n > 0 {
		q.ReplicationFactor = float64(replicas) / float64(n)
	}
	q.EdgeBalance, q.MaxPartEdges = balance(edgeCounts)
	q.VertexBalance, _ = balance(vertCounts)
	return q
}

// balance returns max/mean and the max of xs (1,0 for all-zero input).
func balance(xs []int64) (float64, int64) {
	var sum, max int64
	for _, x := range xs {
		sum += x
		if x > max {
			max = x
		}
	}
	if sum == 0 {
		return 1, 0
	}
	mean := float64(sum) / float64(len(xs))
	return float64(max) / mean, max
}

// VertexSets returns, for each partition, the number of vertices it covers
// (|V(Ep)|). Exposed for tests and the engine.
func (p *Partitioning) VertexSets(g *graph.Graph) []int64 {
	n := int(g.NumVertices())
	sets := make([]bitset.Set, n)
	for v := range sets {
		sets[v] = bitset.New(p.NumParts)
	}
	for i, o := range p.Owner {
		if o == None {
			continue
		}
		e := g.Edge(int64(i))
		sets[e.U].Set(int(o))
		sets[e.V].Set(int(o))
	}
	counts := make([]int64, p.NumParts)
	for v := 0; v < n; v++ {
		sets[v].ForEach(func(q int) { counts[q]++ })
	}
	return counts
}
