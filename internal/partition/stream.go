// Stream side of the v2 API: partitioners that consume a graph.Source — an
// edge stream — instead of a materialized *graph.Graph, in memory bounded by
// the dense per-vertex state plus stream buffers, never by a resident edge
// list. The in-memory entry point Partition(ctx, g, spec) of a StreamMethod
// is a thin adapter over the same core fed by graph.SourceOf(g), so for any
// source that replays the canonical edge list (SourceOf, canonical shard
// stripes) the two paths are bit-identical: same assignment, same quality
// numbers.
//
// Owner arrays are always indexed by raw stream position — canonical edge
// index for canonical sources — no matter the processing order: methods
// that need a randomized arrival order (the replica-greedy family) run over
// graph.Shuffled, whose chunks carry raw positions, exactly as the old
// in-memory cores indexed through their rng.Perm.
package partition

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/graph"
)

// StreamPartitioner is implemented by methods that can partition straight
// from an edge stream. PartitionStream must behave exactly like Partition
// over the materialized stream when the source replays a canonical edge
// list.
type StreamPartitioner interface {
	Partitioner
	// PartitionStream computes a spec.NumParts-way partitioning of the
	// source's edge stream. Owner[i] is the owner of the i-th raw stream
	// edge.
	PartitionStream(ctx context.Context, src graph.Source, spec Spec) (*Result, error)
}

// StreamCore is the heart of a streaming partitioner under the registry: it
// consumes the source and adds its dense-state analytic accounting to st;
// the StreamMethod.PartitionStream wrapper supplies validation, timing,
// order decoration, quality measurement and the rest of the accounting.
type StreamCore func(ctx context.Context, src graph.Source, spec Spec, st *Stats) (*Partitioning, error)

// StreamFunc is the concrete-type shape of a streaming core
// (HDRF.Stream, DBH.Stream, ...): configuration lives on the receiver, so
// only the partition count travels alongside the source.
type StreamFunc func(ctx context.Context, src graph.Source, numParts int, st *Stats) (*Partitioning, error)

// StreamMethod adapts a StreamCore into both Partitioner and
// StreamPartitioner: single-process streaming methods register themselves
// as a StreamMethod, and their graph entry point routes through
// graph.SourceOf so the two paths cannot drift apart.
type StreamMethod struct {
	// Label is the display name used in experiment tables and Stats.Method.
	Label string
	Core  StreamCore
	// Shuffle runs the core over graph.Shuffled(src, spec.Seed): set by the
	// replica-greedy methods whose placement quality depends on a
	// randomized arrival order. Pure hash rules leave it unset and process
	// the raw order (their placement is order-independent).
	Shuffle bool
}

// Name implements Partitioner.
func (m StreamMethod) Name() string { return m.Label }

// Partition implements Partitioner as a thin adapter over the stream core:
// the graph becomes a canonical-order source, and the resident input is
// added to the accounted peak (that is the materialized-graph baseline the
// stream path is measured against).
func (m StreamMethod) Partition(ctx context.Context, g *graph.Graph, spec Spec) (*Result, error) {
	res, err := m.PartitionStream(ctx, graph.SourceOf(g), spec)
	if err != nil {
		return nil, err
	}
	res.Stats.PeakMemBytes += g.MemoryFootprint()
	return res, nil
}

// PartitionStream implements StreamPartitioner: it validates the spec,
// applies the method's order decoration, times the core and the quality
// measurement as separate phases, measures quality with one extra pass over
// the raw source (no graph needed), and accounts the run's peak memory —
// the owner array, the measurement slab, stream buffers, the shuffle bucket
// buffer, plus whatever dense state the core reported. The accounting is a
// deliberate upper bound (core state and measurement slab are charged
// together even though they do not coexist).
func (m StreamMethod) PartitionStream(ctx context.Context, src graph.Source, spec Spec) (*Result, error) {
	return m.runStream(ctx, src, spec, false)
}

// PartitionStreamPiped is PartitionStream over the pipelined decoration:
// decode-ahead prefetching on every pass and, for shuffling methods, the
// single-pass spill-backed shuffle in place of the B-re-read sequential
// one. The emitted edge order — and therefore the Owner array, checksum
// and Quality — is bit-identical to PartitionStream's; the stages simply
// overlap, which is what makes cold-disk runs disk-bound instead of
// CPU-bound. Stats.Extra carries source_bytes_read when the source meters
// its storage traffic.
func (m StreamMethod) PartitionStreamPiped(ctx context.Context, src graph.Source, spec Spec) (*Result, error) {
	return m.runStream(ctx, src, spec, true)
}

func (m StreamMethod) runStream(ctx context.Context, src graph.Source, spec Spec, piped bool) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eff, measureSrc := src, src
	if piped {
		// One prefetcher under everything: the assignment pass consumes it
		// through the piped shuffle (whose Unwrap exposes it), and the
		// degree/measure passes land on it via RawSource, so every pass
		// decodes ahead of its consumer.
		eff = graph.Piped(src, spec.Seed, m.Shuffle)
		measureSrc = eff
	} else if m.Shuffle {
		eff = graph.Shuffled(src, spec.Seed)
	}
	res := &Result{}
	res.Stats.Method = m.Label
	res.Stats.NumParts = spec.NumParts
	start := time.Now()
	p, err := m.Core(ctx, eff, spec, &res.Stats)
	if err != nil {
		return nil, err
	}
	res.Partitioning = p
	res.Stats.AddPhase("partition", time.Since(start))
	// The piped decorators can say how much of the partition phase their
	// stages took — the shuffle its scatter pass, the prefetcher its decode
	// goroutine's time inside the inner stream (RawSource stops at the
	// prefetcher, which is deliberately not an Unwrapper). Surfacing them as
	// phases puts the stage breakdown on traces (/debug/trace tiles phases).
	if sc, ok := eff.(interface{ ScatterTime() time.Duration }); ok {
		if d := sc.ScatterTime(); d > 0 {
			res.Stats.AddPhase("scatter", d)
		}
	}
	if dt, ok := graph.RawSource(eff).(interface{ DecodeTime() time.Duration }); ok {
		if d := dt.DecodeTime(); d > 0 {
			res.Stats.AddPhase("decode", d)
		}
	}
	mStart := time.Now()
	q, slabBytes, err := measureStream(ctx, measureSrc, p)
	if err != nil {
		return nil, err
	}
	res.Quality = q
	res.Stats.AddPhase(PhaseMeasure, time.Since(mStart))
	res.Stats.PeakMemBytes += int64(len(p.Owner))*4 + slabBytes + graph.SourceBufferBytes
	if acct, ok := eff.(interface{ AccountBytes() int64 }); ok {
		res.Stats.PeakMemBytes += acct.AccountBytes()
	}
	if bm, ok := src.(graph.ByteMeter); ok {
		res.Stats.SetExtra("source_bytes_read", float64(bm.BytesRead()))
	}
	res.Stats.Wall = time.Since(start)
	return res, nil
}

// PipedStreamPartitioner is implemented by methods whose stream path can
// run pipelined (StreamMethod gives it to every registered streaming
// method).
type PipedStreamPartitioner interface {
	StreamPartitioner
	PartitionStreamPiped(ctx context.Context, src graph.Source, spec Spec) (*Result, error)
}

// Legacy adapts a concrete streaming core to the v1 (g, numParts) call
// shape: one adapter for every method, replacing the per-type
// Partition/PartitionCtx shim pairs. Cores that want a shuffled arrival
// order wrap it themselves (graph.Shuffled) before handing off to their
// Stream method.
//
// Deprecated: retained for tests and downstream callers of the concrete
// types; new code goes through methods.New / methods.PartitionSource.
func Legacy(g *graph.Graph, numParts int, core StreamFunc) (*Partitioning, error) {
	if numParts <= 0 {
		return nil, fmt.Errorf("partition: numParts must be positive, got %d", numParts)
	}
	var st Stats
	return core(context.Background(), graph.SourceOf(g), numParts, &st)
}

// Counts resolves a source's exact |V| and |E|, from its hints when known
// and otherwise with one counting pass over the raw (undecorated) source,
// polling ctx every chunk. Because the pass is exact, a core behaves
// identically with or without hints.
func Counts(ctx context.Context, src graph.Source) (numVertices uint32, numEdges int64, err error) {
	return graph.SourceCounts(src, func(int64) error { return ctx.Err() })
}

// Degrees runs one pass over the raw (undecorated) source and returns every
// vertex's degree in the stream (duplicate edges count per occurrence,
// exactly as they occupy stream positions). This is the offline-degree pass
// the degree-aware streaming methods (HDRF, SNE, DBH, Hybrid) run before
// assigning; degree counting is order-independent, so the shuffle decorator
// is bypassed.
func Degrees(ctx context.Context, src graph.Source, numVertices uint32) ([]uint32, error) {
	deg := make([]uint32, numVertices)
	st, err := graph.RawSource(src).Edges()
	if err != nil {
		return nil, err
	}
	defer st.Close()
	for {
		chunk, _, err := st.Next()
		if err == io.EOF {
			return deg, nil
		}
		if err != nil {
			return nil, err
		}
		for _, k := range chunk {
			deg[k>>32]++
			deg[uint32(k)]++
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
}

// DegreesAndCounts resolves the degree slab, |V| and |E| with a single
// pass over the raw (undecorated) source — the degree-aware cores' whole
// prologue, so a hint-less source (generators, binary files with possible
// self loops) is not scanned once for counts and again for degrees. Hints
// are honored when present; the slab grows geometrically past them only if
// the stream contradicts the declared |V| (a contract violation that ends
// in a larger slab, never a panic).
func DegreesAndCounts(ctx context.Context, src graph.Source) (deg []uint32, numVertices uint32, numEdges int64, err error) {
	info := graph.RawSource(src).Info()
	deg = make([]uint32, info.NumVertices)
	var maxV uint32
	var seen int64
	st, err := graph.RawSource(src).Edges()
	if err != nil {
		return nil, 0, 0, err
	}
	defer st.Close()
	for {
		chunk, _, err := st.Next()
		if err == io.EOF {
			nv := info.NumVertices
			if maxV > nv {
				nv = maxV
			}
			return deg[:nv], nv, seen, nil
		}
		if err != nil {
			return nil, 0, 0, err
		}
		for _, k := range chunk {
			u, v := uint32(k>>32), uint32(k)
			if v >= maxV {
				maxV = v + 1
			}
			if int(v) >= len(deg) {
				grown := make([]uint32, max(int(v)+1, 2*len(deg)))
				copy(grown, deg)
				deg = grown
			}
			deg[u]++
			deg[v]++
		}
		seen += int64(len(chunk))
		if err := ctx.Err(); err != nil {
			return nil, 0, 0, err
		}
	}
}

// EachEdge drives one pass over src, calling fn(pos, k) with each edge's
// raw stream position, and polls ctx every CheckEvery edges. It stops on
// fn's first error. It is the shared assignment loop under the streaming
// cores.
func EachEdge(ctx context.Context, src graph.Source, fn func(pos int64, k uint64) error) error {
	es, err := src.Edges()
	if err != nil {
		return err
	}
	defer es.Close()
	var seq int64
	var processed int
	for {
		chunk, pos, err := es.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		for j, k := range chunk {
			if processed%CheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			processed++
			p := seq + int64(j)
			if pos != nil {
				p = pos[j]
			}
			if err := fn(p, k); err != nil {
				return err
			}
		}
		seq += int64(len(chunk))
	}
}

// ReplicaSets is the dense per-vertex partition-set state shared by the
// replica-aware streaming cores (HDRF, FENNEL, Oblivious, SNE): one flat
// slab of ceil(P/64) words per vertex, indexed by vertex id — no per-vertex
// allocations, no maps, byte-accountable. Rows are bitset views, so the
// greedy placement rules reuse the bitset set operations unchanged.
type ReplicaSets struct {
	words int
	slab  []uint64
}

// NewReplicaSets returns dense sets of numParts bits for numVertices
// vertices, all empty.
func NewReplicaSets(numParts int, numVertices uint32) *ReplicaSets {
	w := bitset.WordsFor(numParts)
	return &ReplicaSets{words: w, slab: make([]uint64, int(numVertices)*w)}
}

// Row returns the mutable partition set of vertex v.
func (r *ReplicaSets) Row(v graph.Vertex) bitset.Set {
	off := int(v) * r.words
	return bitset.FromWords(r.slab[off : off+r.words])
}

// Set records a replica of vertex v on partition q.
func (r *ReplicaSets) Set(v graph.Vertex, q int) {
	r.slab[int(v)*r.words+q>>6] |= 1 << (uint(q) & 63)
}

// Bytes returns the accounted size of the slab.
func (r *ReplicaSets) Bytes() int64 { return int64(len(r.slab)) * 8 }

// Words returns the number of u64 words per vertex row (ceil(P/64)).
func (r *ReplicaSets) Words() int { return r.words }

// NumVertices returns the number of vertex rows the slab covers.
func (r *ReplicaSets) NumVertices() uint32 { return uint32(len(r.slab) / r.words) }

// Grow extends the slab to cover at least numVertices rows, preserving
// existing sets. Growth is geometric so a live ingest that keeps minting
// vertex ids amortizes to O(1) per vertex. Shrinking is a no-op.
func (r *ReplicaSets) Grow(numVertices uint32) {
	need := int(numVertices) * r.words
	if need <= len(r.slab) {
		return
	}
	grown := make([]uint64, max(need, 2*len(r.slab)))
	copy(grown, r.slab)
	r.slab = grown
}

// Slab exposes the backing words, row-major by vertex id, for persistence.
// Callers must not resize it; mutating bits through it is equivalent to Set.
func (r *ReplicaSets) Slab() []uint64 { return r.slab }

// ReplicaSetsFromSlab adopts a persisted slab (as returned by Slab) for
// numParts partitions. The length must be a whole number of rows.
func ReplicaSetsFromSlab(numParts int, slab []uint64) (*ReplicaSets, error) {
	w := bitset.WordsFor(numParts)
	if len(slab)%w != 0 {
		return nil, fmt.Errorf("partition: replica slab length %d not a multiple of %d words", len(slab), w)
	}
	return &ReplicaSets{words: w, slab: slab}, nil
}

// measureStream computes the Quality of p over the raw source's stream: the
// i-th raw stream edge must be owned by Owner[i]. The math is identical to
// Partitioning.Measure — for a canonical source the numbers are equal bit
// for bit — but runs without the graph, in a |V|×ceil(P/64)-word slab. It
// also validates completeness: length mismatch between stream and owner
// array, unassigned or out-of-range owners all error.
func measureStream(ctx context.Context, src graph.Source, p *Partitioning) (Quality, int64, error) {
	src = graph.RawSource(src)
	words := bitset.WordsFor(p.NumParts)
	n := int(src.Info().NumVertices)
	slab := make([]uint64, n*words)
	edgeCounts := make([]int64, p.NumParts)
	st, err := src.Edges()
	if err != nil {
		return Quality{}, 0, err
	}
	defer st.Close()
	pos := 0
	for {
		chunk, _, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Quality{}, 0, err
		}
		if pos+len(chunk) > len(p.Owner) {
			return Quality{}, 0, fmt.Errorf("partition: stream yields more than %d edges, owner array exhausted", len(p.Owner))
		}
		for _, k := range chunk {
			o := p.Owner[pos]
			pos++
			if o == None {
				return Quality{}, 0, fmt.Errorf("partition: stream edge %d unassigned", pos-1)
			}
			if o < 0 || int(o) >= p.NumParts {
				return Quality{}, 0, fmt.Errorf("partition: stream edge %d has out-of-range owner %d", pos-1, o)
			}
			u, v := int(k>>32), int(uint32(k))
			if u >= n || v >= n {
				hi := u
				if v > hi {
					hi = v
				}
				grown := make([]uint64, max((hi+1)*words, 2*len(slab)))
				copy(grown, slab)
				slab = grown
				n = len(grown) / words
			}
			w, b := int(o)>>6, uint64(1)<<(uint(o)&63)
			slab[u*words+w] |= b
			slab[v*words+w] |= b
			edgeCounts[o]++
		}
		if err := ctx.Err(); err != nil {
			return Quality{}, 0, err
		}
	}
	if pos != len(p.Owner) {
		return Quality{}, 0, fmt.Errorf("partition: stream yielded %d edges, owner array has %d", pos, len(p.Owner))
	}
	var replicas, covered int64
	vertCounts := make([]int64, p.NumParts)
	for v := 0; v < n; v++ {
		row := bitset.FromWords(slab[v*words : (v+1)*words])
		c := row.Count()
		if c > 0 {
			covered++
		}
		replicas += int64(c)
		row.ForEach(func(q int) { vertCounts[q]++ })
	}
	q := Quality{Replicas: replicas, VertexCuts: replicas - covered}
	if n > 0 {
		q.ReplicationFactor = float64(replicas) / float64(n)
	}
	q.EdgeBalance, q.MaxPartEdges = balance(edgeCounts)
	q.VertexBalance, _ = balance(vertCounts)
	return q, int64(len(slab)) * 8, nil
}
