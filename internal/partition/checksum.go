package partition

import "hash/fnv"

// Checksum returns the FNV-64a hash of an owner sequence (little-endian
// int32 per edge, in canonical edge order). It is the repository's common
// currency for comparing partitionings across processes and transports: the
// golden determinism tests, dnepart -checksum and the multi-process
// dneworker all print this value, so a 4-process shard run can be asserted
// identical to the in-process run by comparing two numbers.
func Checksum(owner []int32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, o := range owner {
		buf[0], buf[1], buf[2], buf[3] = byte(o), byte(o>>8), byte(o>>16), byte(o>>24)
		h.Write(buf[:])
	}
	return h.Sum64()
}
