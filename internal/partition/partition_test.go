package partition

import (
	"testing"
	"testing/quick"

	"github.com/distributedne/dne/internal/graph"
)

func triangle() *graph.Graph {
	return graph.FromEdges(0, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
}

func TestValidate(t *testing.T) {
	g := triangle()
	p := New(2, g.NumEdges())
	if err := p.Validate(g); err == nil {
		t.Error("unassigned partitioning must not validate")
	}
	p.Owner = []int32{0, 1, 0}
	if err := p.Validate(g); err != nil {
		t.Error(err)
	}
	p.Owner[1] = 5
	if err := p.Validate(g); err == nil {
		t.Error("out-of-range owner must not validate")
	}
	p.Owner = []int32{0}
	if err := p.Validate(g); err == nil {
		t.Error("wrong length must not validate")
	}
}

func TestMeasureTriangle(t *testing.T) {
	g := triangle()
	p := &Partitioning{NumParts: 2, Owner: []int32{0, 1, 0}}
	q := p.Measure(g)
	// V(E0) = {0,1,2}, V(E1) = {1,2} → replicas 5, RF 5/3.
	if q.Replicas != 5 {
		t.Errorf("Replicas = %d, want 5", q.Replicas)
	}
	if want := 5.0 / 3.0; q.ReplicationFactor != want {
		t.Errorf("RF = %f, want %f", q.ReplicationFactor, want)
	}
	if q.VertexCuts != 2 {
		t.Errorf("VertexCuts = %d, want 2", q.VertexCuts)
	}
	if q.MaxPartEdges != 2 {
		t.Errorf("MaxPartEdges = %d", q.MaxPartEdges)
	}
}

func TestSinglePartitionIsIdeal(t *testing.T) {
	g := triangle()
	p := &Partitioning{NumParts: 1, Owner: []int32{0, 0, 0}}
	q := p.Measure(g)
	if q.ReplicationFactor != 1.0 {
		t.Errorf("RF = %f, want 1.0", q.ReplicationFactor)
	}
	if q.VertexCuts != 0 {
		t.Errorf("VertexCuts = %d, want 0", q.VertexCuts)
	}
	if q.EdgeBalance != 1.0 || q.VertexBalance != 1.0 {
		t.Error("single partition must be perfectly balanced")
	}
}

func TestEdgeCountsAndVertexSets(t *testing.T) {
	g := triangle()
	p := &Partitioning{NumParts: 3, Owner: []int32{0, 1, 1}}
	counts := p.EdgeCounts()
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 0 {
		t.Errorf("EdgeCounts = %v", counts)
	}
	vs := p.VertexSets(g)
	if vs[0] != 2 || vs[1] != 3 || vs[2] != 0 {
		t.Errorf("VertexSets = %v", vs)
	}
}

func TestQuickRFBounds(t *testing.T) {
	// Property: for any assignment of the triangle and any valid partition
	// count, 1 ≤ RF ≤ min(numParts, maxDegree... here ≤ 2 per vertex with 2
	// incident edges) and replicas ≥ covered vertices.
	f := func(o1, o2, o3 uint8) bool {
		const parts = 4
		g := triangle()
		p := &Partitioning{NumParts: parts, Owner: []int32{
			int32(o1 % parts), int32(o2 % parts), int32(o3 % parts)}}
		q := p.Measure(g)
		return q.ReplicationFactor >= 1.0 &&
			q.ReplicationFactor <= 2.0 && // each vertex has degree 2
			q.VertexCuts >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBalanceAllZero(t *testing.T) {
	b, max := balance([]int64{0, 0})
	if b != 1 || max != 0 {
		t.Errorf("balance of zeros = %f,%d", b, max)
	}
}
