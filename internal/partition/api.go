// Partitioner API v2: every edge-partitioning algorithm is invoked through
// Partition(ctx, g, spec) and returns a Result bundling the assignment with
// a quality snapshot and per-run execution statistics. Specs carry the
// partition count plus per-method parameters; parameter names, types and
// defaults are declared by each method's registry descriptor
// (internal/methods), which validates and defaults a Spec before it reaches
// the partitioner.
package partition

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/distributedne/dne/internal/graph"
)

// Spec describes one partitioning run. NumParts is required; Seed drives
// every randomized choice; Params holds per-method tunables keyed by the
// names declared in the method's descriptor (float64, int64/int or bool
// values; JSON numbers arrive as float64 and are coerced).
type Spec struct {
	NumParts int
	Seed     int64
	Params   map[string]any
}

// NewSpec returns a Spec with no method parameters set; methods fall back
// to their declared defaults.
func NewSpec(numParts int, seed int64) Spec {
	return Spec{NumParts: numParts, Seed: seed}
}

// WithParam returns a copy of s with one parameter set. The receiver's map
// is never mutated, so Specs can be shared and forked freely.
func (s Spec) WithParam(name string, value any) Spec {
	params := make(map[string]any, len(s.Params)+1)
	//lint:ordered map-to-map copy; insertion order is irrelevant
	for k, v := range s.Params {
		params[k] = v
	}
	params[name] = value
	s.Params = params
	return s
}

// Validate checks the method-independent invariants.
func (s Spec) Validate() error {
	if s.NumParts <= 0 {
		return fmt.Errorf("partition: spec.NumParts must be positive, got %d", s.NumParts)
	}
	return nil
}

// Float reads a float64 parameter, coercing integer values; def is returned
// when the parameter is unset.
func (s Spec) Float(name string, def float64) float64 {
	switch v := s.Params[name].(type) {
	case float64:
		return v
	case float32:
		return float64(v)
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	return def
}

// Int reads an integer parameter, accepting exact float64 values (JSON
// numbers); def is returned when the parameter is unset.
func (s Spec) Int(name string, def int) int {
	switch v := s.Params[name].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		if v == math.Trunc(v) {
			return int(v)
		}
	}
	return def
}

// Bool reads a boolean parameter; def is returned when the parameter is
// unset.
func (s Spec) Bool(name string, def bool) bool {
	if v, ok := s.Params[name].(bool); ok {
		return v
	}
	return def
}

// PhaseTiming is one named phase of a run with its wall-clock duration.
type PhaseTiming struct {
	Name    string
	Elapsed time.Duration
}

// Stats are the execution metrics of one partitioning run. Counters that a
// method does not track stay zero; method-specific extras (CAS conflicts,
// staleness rates, simulated network time) go in Extra.
type Stats struct {
	// Method is the canonical name of the partitioner that produced the run.
	Method string
	// NumParts echoes the spec.
	NumParts int
	// Wall is the end-to-end time of the Partition call, quality
	// measurement included.
	Wall time.Duration
	// Phases breaks Wall down into named sub-steps, in execution order.
	Phases []PhaseTiming
	// PeakMemBytes is the analytic peak memory across all machines for
	// methods that account it (DNE, ParMETIS, DistLP); 0 when unknown.
	PeakMemBytes int64
	// Iterations is the superstep / sweep count for iterative methods.
	Iterations int
	// CommBytes / CommMessages are inter-machine traffic for distributed
	// methods (result collection excluded).
	CommBytes    int64
	CommMessages int64
	// SweptEdges counts edges assigned by a leftover sweep (normally 0).
	SweptEdges int64
	// Extra carries method-specific numeric metrics keyed by snake_case
	// names (e.g. "cas_conflicts", "simulated_network_ms").
	Extra map[string]float64
}

// AddPhase appends a named phase timing.
func (s *Stats) AddPhase(name string, elapsed time.Duration) {
	s.Phases = append(s.Phases, PhaseTiming{Name: name, Elapsed: elapsed})
}

// SetExtra records a method-specific metric.
func (s *Stats) SetExtra(name string, value float64) {
	if s.Extra == nil {
		s.Extra = make(map[string]float64)
	}
	s.Extra[name] = value
}

// MemScore is PeakMemBytes normalised by the edge count (the Fig. 9
// metric); 0 when either is unknown.
func (s *Stats) MemScore(numEdges int64) float64 {
	if numEdges == 0 {
		return 0
	}
	return float64(s.PeakMemBytes) / float64(numEdges)
}

// Result is the v2 return shape: the assignment, its quality snapshot, and
// the run's execution statistics.
type Result struct {
	Partitioning *Partitioning
	Quality      Quality
	Stats        Stats
}

// Partitioner is implemented by every edge-partitioning algorithm in this
// repository (API v2). Implementations must honor ctx: long-running loops
// check for cancellation periodically and return ctx.Err() promptly.
type Partitioner interface {
	// Name returns the short label used in experiment tables.
	Name() string
	// Partition computes a spec.NumParts-way edge partitioning of g.
	Partition(ctx context.Context, g *graph.Graph, spec Spec) (*Result, error)
}

// CoreFunc is the ctx-aware heart of a simple (single-process) partitioner:
// it computes the assignment and leaves quality measurement and timing to
// the Run wrapper.
type CoreFunc func(ctx context.Context, g *graph.Graph, spec Spec) (*Partitioning, error)

// Method adapts a CoreFunc into a Partitioner: Run supplies spec
// validation, phase timing and the quality snapshot. Single-process
// partitioners register themselves as a Method; only methods with richer
// native statistics (DNE, DistLP, ParMETIS) implement the interface
// directly.
type Method struct {
	// Label is the display name used in experiment tables and Stats.Method.
	Label string
	Core  CoreFunc
}

// Name implements Partitioner.
func (m Method) Name() string { return m.Label }

// Partition implements Partitioner.
func (m Method) Partition(ctx context.Context, g *graph.Graph, spec Spec) (*Result, error) {
	return Run(ctx, m.Label, g, spec, m.Core)
}

// CheckEvery is the granularity, in processed edges, at which streaming
// loops poll for context cancellation.
const CheckEvery = 4096

// PhaseMeasure is the reserved phase name for the quality-measurement
// epilogue; harnesses subtract it to recover pure partitioning time.
const PhaseMeasure = "measure"

// Run executes a simple partitioner core under the v2 contract: it
// validates the spec, times the core and the quality measurement as
// separate phases, and assembles the Result.
func Run(ctx context.Context, name string, g *graph.Graph, spec Spec, core CoreFunc) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	p, err := core(ctx, g, spec)
	coreElapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	res := &Result{Partitioning: p}
	res.Stats.Method = name
	res.Stats.NumParts = spec.NumParts
	res.Stats.AddPhase("partition", coreElapsed)
	res.Finish(g, start)
	return res, nil
}

// Finish computes the quality snapshot as a timed "measure" phase and
// closes out Wall relative to start. Adapters that assemble Stats by hand
// (DNE, DistLP, ParMETIS) share this epilogue with Run.
func (r *Result) Finish(g *graph.Graph, start time.Time) {
	mStart := time.Now()
	r.Quality = r.Partitioning.Measure(g)
	r.Stats.AddPhase(PhaseMeasure, time.Since(mStart))
	r.Stats.Wall = time.Since(start)
}

// PartitionTime is Wall minus the measurement epilogue: the time the
// algorithm itself took, comparable to pre-v2 timing tables.
func (s *Stats) PartitionTime() time.Duration {
	t := s.Wall
	for _, ph := range s.Phases {
		if ph.Name == PhaseMeasure {
			t -= ph.Elapsed
		}
	}
	return t
}
