package partition

import (
	"context"
	"testing"

	"github.com/distributedne/dne/internal/graph"
)

func streamTestGraph() *graph.Graph {
	edges := make([]graph.Edge, 0, 3000)
	for i := uint32(0); i < 1000; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1}, graph.Edge{U: i % 7, V: i + 2})
	}
	return graph.FromEdges(0, edges)
}

// modCore assigns each edge by stream position modulo the partition count —
// order-independent, so it exercises the StreamRun plumbing in isolation.
func modCore(ctx context.Context, src graph.Source, spec Spec, st *Stats) (*Partitioning, error) {
	_, ne, err := Counts(ctx, src)
	if err != nil {
		return nil, err
	}
	p := New(spec.NumParts, ne)
	err = EachEdge(ctx, src, func(pos int64, k uint64) error {
		p.Owner[pos] = int32(pos % int64(spec.NumParts))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// TestStreamRunQualityMatchesMeasure: the stream-side quality measurement
// (no graph, |V|-slab) must equal Partitioning.Measure bit for bit on a
// canonical source.
func TestStreamRunQualityMatchesMeasure(t *testing.T) {
	g := streamTestGraph()
	m := StreamMethod{Label: "mod", Core: modCore}
	res, err := m.Partition(context.Background(), g, NewSpec(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Partitioning.Validate(g); err != nil {
		t.Fatal(err)
	}
	if want := res.Partitioning.Measure(g); res.Quality != want {
		t.Fatalf("stream quality %+v != Measure %+v", res.Quality, want)
	}
	if res.Stats.PeakMemBytes <= g.MemoryFootprint() {
		t.Fatalf("graph-path peak %d must include the resident graph (%d)",
			res.Stats.PeakMemBytes, g.MemoryFootprint())
	}
}

// TestStreamMethodShuffleKeepsIndexing: with Shuffle set, the core sees a
// permuted arrival order but the owner array stays indexed by raw stream
// position, and the measurement still validates.
func TestStreamMethodShuffleKeepsIndexing(t *testing.T) {
	g := streamTestGraph()
	sawOutOfOrder := false
	core := func(ctx context.Context, src graph.Source, spec Spec, st *Stats) (*Partitioning, error) {
		_, ne, err := Counts(ctx, src)
		if err != nil {
			return nil, err
		}
		p := New(spec.NumParts, ne)
		var prev int64 = -1
		err = EachEdge(ctx, src, func(pos int64, k uint64) error {
			if pos < prev {
				sawOutOfOrder = true
			}
			prev = pos
			// The decorated stream must still pair each key with its raw
			// position: verify against the canonical list.
			if e := g.Edge(pos); graph.PackEdge(e.U, e.V) != k {
				t.Fatalf("position %d carries wrong key", pos)
			}
			p.Owner[pos] = int32(pos % int64(spec.NumParts))
			return nil
		})
		if err != nil {
			return nil, err
		}
		return p, nil
	}
	m := StreamMethod{Label: "mod", Core: core, Shuffle: true}
	res, err := m.PartitionStream(context.Background(), graph.SourceOf(g), NewSpec(4, 9))
	if err != nil {
		t.Fatal(err)
	}
	if !sawOutOfOrder {
		t.Fatal("Shuffle did not permute the arrival order")
	}
	if err := res.Partitioning.Validate(g); err != nil {
		t.Fatal(err)
	}
	if want := res.Partitioning.Measure(g); res.Quality != want {
		t.Fatalf("stream quality %+v != Measure %+v", res.Quality, want)
	}
}

// TestLegacyAdapter: the one deprecated shim drives a concrete core with
// the v1 shape and rejects a bad partition count.
func TestLegacyAdapter(t *testing.T) {
	g := streamTestGraph()
	core := func(ctx context.Context, src graph.Source, numParts int, st *Stats) (*Partitioning, error) {
		return modCore(ctx, src, Spec{NumParts: numParts}, st)
	}
	p, err := Legacy(g, 3, core)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	if _, err := Legacy(g, 0, core); err == nil {
		t.Fatal("numParts=0 accepted")
	}
}
