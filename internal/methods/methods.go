// Package methods is the registry of edge-partitioning methods, mapping the
// names used by the CLIs, the HTTP service and the experiment harness onto
// configured partitioners. It is the single place a new partitioner must be
// registered to become reachable from every tool.
package methods

import (
	"fmt"
	"sort"
	"strings"

	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/hashpart"
	"github.com/distributedne/dne/internal/lppart"
	"github.com/distributedne/dne/internal/metispart"
	"github.com/distributedne/dne/internal/nepart"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/sheep"
	"github.com/distributedne/dne/internal/streampart"
)

// Options carries the tunables shared across methods; methods ignore the
// fields they do not use.
type Options struct {
	Seed   int64
	Alpha  float64 // imbalance factor (dne, ne, sne, sheep)
	Lambda float64 // multi-expansion factor (dne)
	Gamma  float64 // load-cost exponent (fennel)
}

// DefaultOptions mirrors the paper's parameter setting (§7.1).
func DefaultOptions() Options {
	return Options{Seed: 42, Alpha: 1.1, Lambda: 0.1, Gamma: 1.5}
}

// New returns the named partitioner configured with o. Names are
// case-insensitive.
func New(name string, o Options) (partition.Partitioner, error) {
	if o.Alpha == 0 {
		o.Alpha = 1.1
	}
	if o.Lambda == 0 {
		o.Lambda = 0.1
	}
	switch strings.ToLower(name) {
	case "dne", "d.ne", "distributedne":
		p := dne.New()
		p.Cfg.Seed = o.Seed
		p.Cfg.Alpha = o.Alpha
		p.Cfg.Lambda = o.Lambda
		return p, nil
	case "ne":
		return nepart.NE{Seed: o.Seed, Alpha: o.Alpha}, nil
	case "sne":
		return streampart.SNE{Seed: o.Seed, Alpha: o.Alpha}, nil
	case "hdrf":
		return streampart.HDRF{Seed: o.Seed}, nil
	case "fennel":
		return streampart.Fennel{Seed: o.Seed, Gamma: o.Gamma}, nil
	case "random", "rand", "1d":
		return hashpart.Random{Seed: uint64(o.Seed)}, nil
	case "grid", "2d", "2d-random":
		return hashpart.Grid{Seed: uint64(o.Seed)}, nil
	case "dbh":
		return hashpart.DBH{Seed: uint64(o.Seed)}, nil
	case "hybrid":
		return hashpart.Hybrid{Seed: uint64(o.Seed)}, nil
	case "oblivious", "obli":
		return hashpart.Oblivious{Seed: o.Seed}, nil
	case "ginger", "hybridginger", "h.g.":
		return hashpart.HybridGinger{Seed: uint64(o.Seed)}, nil
	case "sheep":
		return sheep.Sheep{Seed: o.Seed, Alpha: o.Alpha}, nil
	case "spinner":
		return lppart.Spinner{Seed: o.Seed}, nil
	case "xtrapulp", "x.p.":
		return lppart.XtraPuLP{Seed: o.Seed}, nil
	case "distlp":
		return &lppart.DistLP{Seed: o.Seed}, nil
	case "metis", "parmetis", "p.m.":
		return &metispart.METIS{Seed: o.Seed}, nil
	}
	return nil, fmt.Errorf("methods: unknown method %q (known: %s)", name, strings.Join(Names(), ", "))
}

// Names returns the canonical method names, sorted.
func Names() []string {
	names := []string{
		"dne", "ne", "sne", "hdrf", "fennel",
		"random", "grid", "dbh", "hybrid", "oblivious", "ginger",
		"sheep", "spinner", "xtrapulp", "distlp", "metis",
	}
	sort.Strings(names)
	return names
}
