// Package methods is the self-registering registry of edge-partitioning
// methods. Each method package declares itself from an init function via
// Register, supplying a Descriptor with its canonical name, aliases,
// documented parameters (with types, defaults and bounds) and a factory.
// Everything name-driven — CLI -method help, the HTTP /api/methods
// endpoint, the conformance tests — is generated from the descriptors, so
// registering here is the single step that makes a new partitioner
// reachable from every tool.
//
// Importing a method package triggers its registration; import
// internal/methods/all for the full set.
package methods

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/distributedne/dne/internal/partition"
)

// ParamKind is the declared type of a method parameter.
type ParamKind string

const (
	Float ParamKind = "float"
	Int   ParamKind = "int"
	Bool  ParamKind = "bool"
)

// ParamSpec declares one tunable of a method: its name, type, default and
// (for numeric parameters) inclusive bounds. Min/Max of 0 with HasBounds
// unset mean unbounded.
type ParamSpec struct {
	Name    string    `json:"name"`
	Kind    ParamKind `json:"kind"`
	Default any       `json:"default"`
	Doc     string    `json:"doc"`
	// Min/Max bound numeric parameters inclusively when HasBounds is set;
	// they serialize so API clients can self-correct out-of-range values.
	Min       float64 `json:"min,omitempty"`
	Max       float64 `json:"max,omitempty"`
	HasBounds bool    `json:"bounded,omitempty"`
}

// Descriptor declares one partitioning method.
type Descriptor struct {
	// Name is the canonical lower-case method name.
	Name string `json:"name"`
	// Aliases are accepted lookup spellings (case-insensitive).
	Aliases []string `json:"aliases,omitempty"`
	// Summary is a one-line description for generated help.
	Summary string `json:"summary"`
	// Streams declares that the method partitions straight from an edge
	// stream: its Factory returns a partition.StreamPartitioner and
	// PartitionSource dispatches sources to it without materializing. The
	// registry conformance test enforces the bit ⇔ interface agreement.
	Streams bool `json:"streams,omitempty"`
	// Params declares every parameter the method reads from Spec.Params.
	Params []ParamSpec `json:"params,omitempty"`
	// Factory returns a fresh partitioner. Per-run configuration travels in
	// the Spec passed to Partition, so factories are cheap and stateless.
	Factory func() partition.Partitioner `json:"-"`
}

// ParamNames returns the declared parameter names, sorted.
func (d Descriptor) ParamNames() []string {
	names := make([]string, len(d.Params))
	for i, p := range d.Params {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}

var registry = map[string]Descriptor{} // canonical name -> descriptor
var aliases = map[string]string{}      // lower-case alias -> canonical name

// Register adds a method to the registry. It is meant to be called from a
// method package's init and panics on invalid or duplicate descriptors —
// both are programmer errors caught by any test that imports the package.
func Register(d Descriptor) {
	name := strings.ToLower(d.Name)
	if name == "" || d.Factory == nil {
		panic(fmt.Sprintf("methods: Register with empty name or nil factory: %+v", d))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("methods: duplicate registration of %q", name))
	}
	if prev, dup := aliases[name]; dup {
		panic(fmt.Sprintf("methods: name %q already registered as alias of %q", name, prev))
	}
	seen := map[string]bool{}
	for _, p := range d.Params {
		if p.Name == "" || seen[p.Name] {
			panic(fmt.Sprintf("methods: %q declares empty or duplicate param %q", name, p.Name))
		}
		seen[p.Name] = true
	}
	d.Name = name
	registry[name] = d
	aliases[name] = name
	for _, a := range d.Aliases {
		a = strings.ToLower(a)
		if prev, dup := aliases[a]; dup {
			panic(fmt.Sprintf("methods: alias %q of %q already taken by %q", a, name, prev))
		}
		aliases[a] = name
	}
}

// Lookup resolves a method name or alias (case-insensitive).
func Lookup(name string) (Descriptor, bool) {
	canon, ok := aliases[strings.ToLower(name)]
	if !ok {
		return Descriptor{}, false
	}
	return registry[canon], true
}

// Names returns the canonical method names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Descriptors returns every registered descriptor, sorted by name.
func Descriptors() []Descriptor {
	ds := make([]Descriptor, 0, len(registry))
	for _, name := range Names() {
		ds = append(ds, registry[name])
	}
	return ds
}

// ParamError reports a spec that does not match a method's declared
// parameters. Declared carries the method's full parameter specs so callers
// (the HTTP handler, CLIs) can surface them.
type ParamError struct {
	Method   string
	Reason   string
	Declared []ParamSpec
}

func (e *ParamError) Error() string {
	names := make([]string, len(e.Declared))
	for i, p := range e.Declared {
		names[i] = fmt.Sprintf("%s (%s, default %v)", p.Name, p.Kind, p.Default)
	}
	declared := "none"
	if len(names) > 0 {
		declared = strings.Join(names, ", ")
	}
	return fmt.Sprintf("methods: %s: %s; declared params: %s", e.Method, e.Reason, declared)
}

// ResolveSpec validates spec.Params against d's declarations, coerces
// types, and fills every unset parameter with its declared default. The
// input spec is not mutated.
func (d Descriptor) ResolveSpec(spec partition.Spec) (partition.Spec, error) {
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	declared := make(map[string]ParamSpec, len(d.Params))
	for _, p := range d.Params {
		declared[p.Name] = p
	}
	resolved := make(map[string]any, len(d.Params))
	// Resolve in sorted name order: with several offending params the
	// ParamError must name the same one on every run, not whichever a map
	// walk happens to visit first.
	names := make([]string, 0, len(spec.Params))
	for name := range spec.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		value := spec.Params[name]
		p, ok := declared[name]
		if !ok {
			return spec, &ParamError{Method: d.Name,
				Reason: fmt.Sprintf("unknown param %q", name), Declared: d.Params}
		}
		coerced, err := coerce(p, value)
		if err != nil {
			return spec, &ParamError{Method: d.Name, Reason: err.Error(), Declared: d.Params}
		}
		resolved[name] = coerced
	}
	for _, p := range d.Params {
		if _, set := resolved[p.Name]; !set {
			resolved[p.Name] = p.Default
		}
	}
	spec.Params = resolved
	return spec, nil
}

// coerce checks value against p's kind and bounds, converting JSON-decoded
// float64 values to the declared type.
func coerce(p ParamSpec, value any) (any, error) {
	switch p.Kind {
	case Bool:
		b, ok := value.(bool)
		if !ok {
			return nil, fmt.Errorf("param %q wants bool, got %T", p.Name, value)
		}
		return b, nil
	case Int:
		var n int
		switch v := value.(type) {
		case int:
			n = v
		case int64:
			n = int(v)
		case float64:
			if v != math.Trunc(v) {
				return nil, fmt.Errorf("param %q wants integer, got %v", p.Name, v)
			}
			n = int(v)
		default:
			return nil, fmt.Errorf("param %q wants int, got %T", p.Name, value)
		}
		if p.HasBounds && (float64(n) < p.Min || float64(n) > p.Max) {
			return nil, fmt.Errorf("param %q = %d outside [%g, %g]", p.Name, n, p.Min, p.Max)
		}
		return n, nil
	case Float:
		var f float64
		switch v := value.(type) {
		case float64:
			f = v
		case float32:
			f = float64(v)
		case int:
			f = float64(v)
		case int64:
			f = float64(v)
		default:
			return nil, fmt.Errorf("param %q wants float, got %T", p.Name, value)
		}
		if p.HasBounds && (f < p.Min || f > p.Max) {
			return nil, fmt.Errorf("param %q = %g outside [%g, %g]", p.Name, f, p.Min, p.Max)
		}
		return f, nil
	}
	return nil, fmt.Errorf("param %q has unknown kind %q", p.Name, p.Kind)
}

// New returns the named partitioner together with the spec resolved against
// its descriptor (params validated, defaulted and coerced). It is the one
// entry point every CLI, server and harness uses.
func New(name string, spec partition.Spec) (partition.Partitioner, partition.Spec, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, spec, fmt.Errorf("methods: unknown method %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
	resolved, err := d.ResolveSpec(spec)
	if err != nil {
		return nil, spec, err
	}
	return d.Factory(), resolved, nil
}
