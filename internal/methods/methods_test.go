package methods_test

import (
	"context"
	"errors"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

func newMethod(t testing.TB, name string, parts int) (partition.Partitioner, partition.Spec) {
	t.Helper()
	pr, spec, err := methods.New(name, partition.NewSpec(parts, 42))
	if err != nil {
		t.Fatal(err)
	}
	return pr, spec
}

func TestEveryNameResolvesAndPartitions(t *testing.T) {
	g := gen.RMAT(8, 4, 1)
	for _, name := range methods.Names() {
		pr, spec := newMethod(t, name, 4)
		res, err := pr.Partition(context.Background(), g, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := res.Partitioning.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestAliases(t *testing.T) {
	for _, alias := range []string{"DNE", "d.ne", "2d", "rand", "parmetis", "x.p.", "h.g."} {
		if _, ok := methods.Lookup(alias); !ok {
			t.Errorf("alias %q did not resolve", alias)
		}
	}
}

func TestUnknownRejected(t *testing.T) {
	if _, _, err := methods.New("definitely-not-a-method", partition.NewSpec(4, 1)); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestDescriptorsDeclareFactoriesAndDocs(t *testing.T) {
	ds := methods.Descriptors()
	if len(ds) < 16 {
		t.Fatalf("expected at least 16 registered methods, got %d", len(ds))
	}
	for _, d := range ds {
		if d.Factory == nil {
			t.Errorf("%s: nil factory", d.Name)
		}
		if d.Summary == "" {
			t.Errorf("%s: empty summary", d.Name)
		}
		for _, p := range d.Params {
			if p.Doc == "" {
				t.Errorf("%s: param %s has no doc", d.Name, p.Name)
			}
			if p.Default == nil {
				t.Errorf("%s: param %s has no default", d.Name, p.Name)
			}
		}
	}
}

func TestUnknownParamRejectedWithDeclaredList(t *testing.T) {
	spec := partition.NewSpec(4, 1).WithParam("no_such_param", 3.0)
	_, _, err := methods.New("dne", spec)
	if err == nil {
		t.Fatal("unknown param accepted")
	}
	var perr *methods.ParamError
	if !errors.As(err, &perr) {
		t.Fatalf("want *ParamError, got %T: %v", err, err)
	}
	if perr.Method != "dne" || len(perr.Declared) == 0 {
		t.Errorf("ParamError not populated: %+v", perr)
	}
}

func TestParamTypeAndBoundsValidation(t *testing.T) {
	cases := []struct {
		name  string
		param string
		value any
	}{
		{"dne", "alpha", 0.5},            // below min
		{"dne", "lambda", 2.0},           // above max
		{"dne", "single_expansion", 3.0}, // wrong type
		{"dne", "max_iterations", 1.5},   // non-integer
		{"fennel", "gamma", true},        // wrong type
		{"hybrid", "threshold", -1.0},    // below min
	}
	for _, c := range cases {
		spec := partition.NewSpec(4, 1).WithParam(c.param, c.value)
		if _, _, err := methods.New(c.name, spec); err == nil {
			t.Errorf("%s: %s=%v accepted", c.name, c.param, c.value)
		}
	}
}

func TestDefaultsAppliedByResolve(t *testing.T) {
	_, spec, err := methods.New("dne", partition.NewSpec(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Float("alpha", -1); got != 1.1 {
		t.Errorf("alpha default not applied: %v", got)
	}
	if got := spec.Float("lambda", -1); got != 0.1 {
		t.Errorf("lambda default not applied: %v", got)
	}
	// JSON-style float input for an int param coerces to int.
	_, spec, err = methods.New("spinner", partition.NewSpec(4, 1).WithParam("iterations", 8.0))
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.Int("iterations", -1); got != 8 {
		t.Errorf("iterations = %v, want 8", got)
	}
}

func TestZeroParamsDefaulted(t *testing.T) {
	g := gen.RMAT(7, 4, 1)
	pr, spec := newMethod(t, "dne", 2)
	if _, err := pr.Partition(context.Background(), g, spec); err != nil {
		t.Fatalf("zero-params dne failed: %v", err)
	}
}
