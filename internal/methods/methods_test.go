package methods

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
)

func TestEveryNameResolvesAndPartitions(t *testing.T) {
	g := gen.RMAT(8, 4, 1)
	for _, name := range Names() {
		pr, err := New(name, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pt, err := pr.Partition(g, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := pt.Validate(g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestAliases(t *testing.T) {
	for _, alias := range []string{"DNE", "d.ne", "2d", "rand", "parmetis", "x.p.", "h.g."} {
		if _, err := New(alias, DefaultOptions()); err != nil {
			t.Errorf("alias %q: %v", alias, err)
		}
	}
}

func TestUnknownRejected(t *testing.T) {
	if _, err := New("definitely-not-a-method", DefaultOptions()); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestZeroOptionsDefaulted(t *testing.T) {
	g := gen.RMAT(7, 4, 1)
	pr, err := New("dne", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Partition(g, 2); err != nil {
		t.Fatalf("zero-options dne failed: %v", err)
	}
}
