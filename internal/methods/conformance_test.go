package methods_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

// TestConformance is the registry-wide v2 contract check: every registered
// method must (a) return promptly with the context's error under a
// cancelled context, and (b) under a normal context produce a complete
// valid partitioning with a populated Stats block.
func TestConformance(t *testing.T) {
	g := gen.RMAT(9, 8, 3) // small deterministic graph
	for _, d := range methods.Descriptors() {
		d := d
		t.Run(d.Name+"/cancelled", func(t *testing.T) {
			t.Parallel()
			pr, spec, err := methods.New(d.Name, partition.NewSpec(4, 42))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			start := time.Now()
			res, err := pr.Partition(ctx, g, spec)
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("cancelled context accepted")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
			if res != nil {
				t.Error("non-nil result alongside error")
			}
			if elapsed > 5*time.Second {
				t.Errorf("cancellation took %v, not prompt", elapsed)
			}
		})
		t.Run(d.Name+"/normal", func(t *testing.T) {
			t.Parallel()
			pr, spec, err := methods.New(d.Name, partition.NewSpec(4, 42))
			if err != nil {
				t.Fatal(err)
			}
			res, err := pr.Partition(context.Background(), g, spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Partitioning.Validate(g); err != nil {
				t.Fatal(err)
			}
			if res.Quality.ReplicationFactor < 1 {
				t.Errorf("quality snapshot missing: %+v", res.Quality)
			}
			st := res.Stats
			if st.Method == "" || st.NumParts != 4 {
				t.Errorf("stats identity not populated: %+v", st)
			}
			if st.Wall <= 0 {
				t.Errorf("stats wall time not populated: %+v", st)
			}
			if len(st.Phases) == 0 {
				t.Errorf("stats phases not populated: %+v", st)
			}
		})
	}
}

// TestMidRunCancellation cancels while the heavyweight methods are running
// and expects them to stop well before finishing naturally.
func TestMidRunCancellation(t *testing.T) {
	g := gen.RMAT(13, 16, 3)
	for _, name := range []string{"dne", "distlp", "hdrf", "sne", "fennel", "ne"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			pr, spec, err := methods.New(name, partition.NewSpec(8, 42))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(2 * time.Millisecond)
				cancel()
			}()
			_, err = pr.Partition(ctx, g, spec)
			// A fast method may legitimately finish before the cancel lands;
			// an error must then be the context's.
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled or success, got %v", err)
			}
		})
	}
}

// graphFamilies are the structural corner cases every partitioner must
// survive: skewed, regular, degenerate, and adversarial shapes.
func graphFamilies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat":         gen.RMAT(9, 8, 3),
		"road":         gen.Road(24, 24, 3),
		"star":         gen.Star(1 << 9),
		"ba":           gen.BarabasiAlbert(1<<9, 3, 3),
		"ws":           gen.WattsStrogatz(1<<9, 6, 0.2, 3),
		"ringcomplete": gen.RingPlusComplete(6),
		"single-edge":  graph.FromEdges(0, []graph.Edge{{U: 0, V: 1}}),
		"path":         graph.FromEdges(0, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}),
	}
}

func TestInvariantsEveryMethodEveryFamily(t *testing.T) {
	for fam, g := range graphFamilies() {
		for _, name := range methods.Names() {
			fam, g, name := fam, g, name
			t.Run(fam+"/"+name, func(t *testing.T) {
				t.Parallel()
				parts := 4
				if g.NumEdges() < 4 {
					parts = 2
				}
				pr, spec := newMethod(t, name, parts)
				res, err := pr.Partition(context.Background(), g, spec)
				if err != nil {
					t.Fatal(err)
				}
				pt := res.Partitioning
				// Complete, in-range cover.
				if err := pt.Validate(g); err != nil {
					t.Fatal(err)
				}
				// Edge counts sum to |E|.
				var sum int64
				for _, c := range pt.EdgeCounts() {
					sum += c
				}
				if sum != g.NumEdges() {
					t.Fatalf("edge counts sum %d != |E| %d", sum, g.NumEdges())
				}
				// RF bounds: covered vertices are counted at least once and
				// at most parts times.
				q := res.Quality
				if q.Replicas < 0 || q.ReplicationFactor > float64(parts) {
					t.Fatalf("quality out of bounds: %+v", q)
				}
				if q.VertexCuts < 0 {
					t.Fatalf("negative vertex cuts: %+v", q)
				}
			})
		}
	}
}

func TestSinglePartitionIsTrivial(t *testing.T) {
	g := gen.RMAT(8, 4, 1)
	for _, name := range methods.Names() {
		pr, spec := newMethod(t, name, 1)
		res, err := pr.Partition(context.Background(), g, spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, o := range res.Partitioning.Owner {
			if o != 0 {
				t.Fatalf("%s: edge %d owner %d with P=1", name, i, o)
			}
		}
		// With one partition every covered vertex has exactly one replica.
		if res.Quality.VertexCuts != 0 {
			t.Errorf("%s: vertex cuts %d with P=1", name, res.Quality.VertexCuts)
		}
	}
}

func TestDeterminismForFixedSeed(t *testing.T) {
	g := gen.RMAT(9, 8, 5)
	for _, name := range methods.Names() {
		a, specA := newMethod(t, name, 8)
		b, specB := newMethod(t, name, 8)
		ra, err := a.Partition(context.Background(), g, specA)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rb, err := b.Partition(context.Background(), g, specB)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range ra.Partitioning.Owner {
			if ra.Partitioning.Owner[i] != rb.Partitioning.Owner[i] {
				t.Errorf("%s: owners differ at edge %d (%d vs %d)",
					name, i, ra.Partitioning.Owner[i], rb.Partitioning.Owner[i])
				break
			}
		}
	}
}

func TestQualityClassOrdering(t *testing.T) {
	// The paper's central quality claim at miniature scale: the greedy /
	// multilevel methods (dne, ne, metis) must clearly beat Random on a
	// skewed graph.
	g := gen.RMAT(11, 16, 7)
	rf := func(name string) float64 {
		pr, spec := newMethod(t, name, 16)
		res, err := pr.Partition(context.Background(), g, spec)
		if err != nil {
			t.Fatal(err)
		}
		return res.Quality.ReplicationFactor
	}
	random := rf("random")
	for _, name := range []string{"dne", "ne", "metis"} {
		if got := rf(name); got >= random*0.6 {
			t.Errorf("%s RF %.3f not clearly below random %.3f", name, got, random)
		}
	}
}

// TestStreamsBitMatchesInterface enforces the capability contract: a
// descriptor's Streams bit must agree with whether its factory's
// partitioner implements partition.StreamPartitioner, and every stream
// partitioner must honor a cancelled context on the source path too.
func TestStreamsBitMatchesInterface(t *testing.T) {
	g := gen.RMAT(9, 8, 3)
	for _, d := range methods.Descriptors() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			t.Parallel()
			pr := d.Factory()
			sp, isStream := pr.(partition.StreamPartitioner)
			if d.Streams != isStream {
				t.Fatalf("descriptor Streams=%v but %T implements StreamPartitioner=%v", d.Streams, pr, isStream)
			}
			if !isStream {
				return
			}
			spec, err := d.ResolveSpec(partition.NewSpec(4, 42))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := sp.PartitionStream(ctx, graph.SourceOf(g), spec); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled source path: want context.Canceled, got %v", err)
			}
			res, err := sp.PartitionStream(context.Background(), graph.SourceOf(g), spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Partitioning.Validate(g); err != nil {
				t.Fatal(err)
			}
		})
	}
}
