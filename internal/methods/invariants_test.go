package methods

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

// graphFamilies are the structural corner cases every partitioner must
// survive: skewed, regular, degenerate, and adversarial shapes.
func graphFamilies() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat":         gen.RMAT(9, 8, 3),
		"road":         gen.Road(24, 24, 3),
		"star":         gen.Star(1 << 9),
		"ba":           gen.BarabasiAlbert(1<<9, 3, 3),
		"ws":           gen.WattsStrogatz(1<<9, 6, 0.2, 3),
		"ringcomplete": gen.RingPlusComplete(6),
		"single-edge":  graph.FromEdges(0, []graph.Edge{{U: 0, V: 1}}),
		"path":         graph.FromEdges(0, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}),
	}
}

func TestInvariantsEveryMethodEveryFamily(t *testing.T) {
	for fam, g := range graphFamilies() {
		for _, name := range Names() {
			fam, g, name := fam, g, name
			t.Run(fam+"/"+name, func(t *testing.T) {
				t.Parallel()
				pr, err := New(name, DefaultOptions())
				if err != nil {
					t.Fatal(err)
				}
				parts := 4
				if g.NumEdges() < 4 {
					parts = 2
				}
				pt, err := pr.Partition(g, parts)
				if err != nil {
					t.Fatal(err)
				}
				// Complete, in-range cover.
				if err := pt.Validate(g); err != nil {
					t.Fatal(err)
				}
				// Edge counts sum to |E|.
				var sum int64
				for _, c := range pt.EdgeCounts() {
					sum += c
				}
				if sum != g.NumEdges() {
					t.Fatalf("edge counts sum %d != |E| %d", sum, g.NumEdges())
				}
				// RF bounds: covered vertices are counted at least once and
				// at most parts times.
				q := pt.Measure(g)
				if q.Replicas < 0 || q.ReplicationFactor > float64(parts) {
					t.Fatalf("quality out of bounds: %+v", q)
				}
				if q.VertexCuts < 0 {
					t.Fatalf("negative vertex cuts: %+v", q)
				}
			})
		}
	}
}

func TestSinglePartitionIsTrivial(t *testing.T) {
	g := gen.RMAT(8, 4, 1)
	for _, name := range Names() {
		pr, err := New(name, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		pt, err := pr.Partition(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, o := range pt.Owner {
			if o != 0 {
				t.Fatalf("%s: edge %d owner %d with P=1", name, i, o)
			}
		}
		q := pt.Measure(g)
		// With one partition every covered vertex has exactly one replica.
		if q.VertexCuts != 0 {
			t.Errorf("%s: vertex cuts %d with P=1", name, q.VertexCuts)
		}
	}
}

func TestDeterminismForFixedSeed(t *testing.T) {
	g := gen.RMAT(9, 8, 5)
	for _, name := range Names() {
		a, err := New(name, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(name, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		pa, err := a.Partition(g, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pb, err := b.Partition(g, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range pa.Owner {
			if pa.Owner[i] != pb.Owner[i] {
				t.Errorf("%s: owners differ at edge %d (%d vs %d)", name, i, pa.Owner[i], pb.Owner[i])
				break
			}
		}
	}
}

func TestQualityClassOrdering(t *testing.T) {
	// The paper's central quality claim at miniature scale: the greedy /
	// multilevel methods (dne, ne, metis) must clearly beat Random on a
	// skewed graph.
	g := gen.RMAT(11, 16, 7)
	rf := func(name string) float64 {
		pr, err := New(name, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		pt, err := pr.Partition(g, 16)
		if err != nil {
			t.Fatal(err)
		}
		return pt.Measure(g).ReplicationFactor
	}
	random := rf("random")
	for _, name := range []string{"dne", "ne", "metis"} {
		if got := rf(name); got >= random*0.6 {
			t.Errorf("%s RF %.3f not clearly below random %.3f", name, got, random)
		}
	}
}
