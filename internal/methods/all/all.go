// Package all links every partitioning method into the binary: blank-
// importing it triggers each method package's init-time Register call.
// CLIs, the HTTP server and tests import it for the full registry; a
// downstream embedder that wants a smaller binary imports only the method
// packages it needs.
package all

import (
	_ "github.com/distributedne/dne/internal/dne"
	_ "github.com/distributedne/dne/internal/hashpart"
	_ "github.com/distributedne/dne/internal/hyperpart"
	_ "github.com/distributedne/dne/internal/lppart"
	_ "github.com/distributedne/dne/internal/metispart"
	_ "github.com/distributedne/dne/internal/nepart"
	_ "github.com/distributedne/dne/internal/sheep"
	_ "github.com/distributedne/dne/internal/streampart"
)
