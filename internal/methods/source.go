package methods

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// PartitionSource is the source-based entry point of the registry: it
// resolves the named method and partitions the source's edge stream.
// Stream-capable methods (Descriptor.Streams) consume the stream directly
// in O(dense-state + chunk) memory; for the rest the source is
// transparently materialized into a graph first, and the run's Stats carry
// the warning — a "materialize" phase plus Extra["materialized_graph_bytes"]
// — so harnesses and callers can see that the O(chunk) promise did not hold
// for that method.
func PartitionSource(ctx context.Context, name string, src graph.Source, spec partition.Spec) (*partition.Result, error) {
	return partitionSource(ctx, name, src, spec, false)
}

// PartitionSourcePiped is PartitionSource over the pipelined stream runner:
// stream-capable methods overlap decode, shuffle and assignment on bounded
// channels (bit-identical output, better wall clock on cold-disk sources);
// methods that cannot stream fall back to the same transparent
// materialization as PartitionSource.
func PartitionSourcePiped(ctx context.Context, name string, src graph.Source, spec partition.Spec) (*partition.Result, error) {
	return partitionSource(ctx, name, src, spec, true)
}

func partitionSource(ctx context.Context, name string, src graph.Source, spec partition.Spec, piped bool) (*partition.Result, error) {
	d, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("methods: unknown method %q (known: %s)", name, strings.Join(Names(), ", "))
	}
	resolved, err := d.ResolveSpec(spec)
	if err != nil {
		return nil, err
	}
	p := d.Factory()
	if d.Streams {
		if piped {
			pp, ok := p.(partition.PipedStreamPartitioner)
			if !ok {
				return nil, fmt.Errorf("methods: %s declares Streams but %T cannot run pipelined", d.Name, p)
			}
			return pp.PartitionStreamPiped(ctx, src, resolved)
		}
		sp, ok := p.(partition.StreamPartitioner)
		if !ok {
			return nil, fmt.Errorf("methods: %s declares Streams but %T is not a StreamPartitioner", d.Name, p)
		}
		return sp.PartitionStream(ctx, src, resolved)
	}
	start := time.Now()
	g, err := graph.FromSource(src, func(int64) error { return ctx.Err() })
	if err != nil {
		return nil, fmt.Errorf("methods: materializing source for %s: %w", d.Name, err)
	}
	materialize := time.Since(start)
	res, err := p.Partition(ctx, g, resolved)
	if err != nil {
		return nil, err
	}
	// Surface the materialization in the stats: phase first (it happened
	// first), memory floor at the resident graph, and an explicit extra.
	res.Stats.Phases = append([]partition.PhaseTiming{{Name: "materialize", Elapsed: materialize}}, res.Stats.Phases...)
	res.Stats.Wall += materialize
	if fp := g.MemoryFootprint(); res.Stats.PeakMemBytes < fp {
		res.Stats.PeakMemBytes = fp
	}
	res.Stats.SetExtra("materialized_graph_bytes", float64(g.MemoryFootprint()))
	return res, nil
}

// StreamNames returns the canonical names of every stream-capable method,
// sorted — the rows of the generated source→method capability table.
func StreamNames() []string {
	var names []string
	for _, d := range Descriptors() {
		if d.Streams {
			names = append(names, d.Name)
		}
	}
	return names
}
