// Package hashpart implements the hash-based edge partitioners the paper
// compares against (§2.2, §7.1): Random (1D hash), Grid (2D hash), DBH
// (degree-based hashing, Xie et al. NIPS'14), Hybrid (PowerLyra's hybrid-cut)
// and the greedy/refined variants Oblivious (PowerGraph) and Hybrid-Ginger
// (PowerLyra). These are fast and scalable but low quality; they anchor the
// quality comparisons of Fig. 8 and Table 5. All but Hybrid-Ginger consume a
// graph.Source directly: the pure hash rules are stateless per edge, and the
// degree-aware ones run one counting pass first, so none of them needs the
// graph in memory.
package hashpart

import (
	"context"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// splitmix64 mixes x into a well-distributed 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashU32(v uint32, salt uint64) uint64 { return splitmix64(uint64(v) ^ salt) }

// checkAt polls ctx every partition.CheckEvery iterations of a loop that
// does not go through partition.EachEdge (HybridGinger's vertex scans).
func checkAt(ctx context.Context, i int) error {
	if i%partition.CheckEvery == 0 {
		return ctx.Err()
	}
	return nil
}

// streamEdges drives one pass over src, calling place(pos, u, v) with each
// edge's raw stream position and polling ctx every partition.CheckEvery
// edges. It is the shared loop under every single-pass hash rule.
func streamEdges(ctx context.Context, src graph.Source, place func(pos int64, u, v graph.Vertex)) error {
	return partition.EachEdge(ctx, src, func(pos int64, k uint64) error {
		place(pos, graph.Vertex(k>>32), graph.Vertex(k))
		return nil
	})
}

// Random is 1D hash partitioning: every edge lands on a uniformly random
// partition.
type Random struct {
	Seed uint64
}

// Name returns the display label.
func (Random) Name() string { return "Rand." }

// Partition is the deprecated v1 shim over the stream core.
func (r Random) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return partition.Legacy(g, numParts, r.Stream)
}

// Stream is the streaming core: one pass, no state beyond the owner array.
func (r Random) Stream(ctx context.Context, src graph.Source, numParts int, st *partition.Stats) (*partition.Partitioning, error) {
	_, ne, err := partition.Counts(ctx, src)
	if err != nil {
		return nil, err
	}
	p := partition.New(numParts, ne)
	st.PeakMemBytes += graph.SourceBufferBytes
	err = streamEdges(ctx, src, func(pos int64, u, v graph.Vertex) {
		h := splitmix64(uint64(u)<<32 | uint64(v) ^ r.Seed)
		p.Owner[pos] = int32(h % uint64(numParts))
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Grid is 2D hash partitioning: machines form an R×C grid and edge (u,v) is
// assigned to cell (h(u) mod R, h(v) mod C). A vertex's replicas are confined
// to one grid row and one column, bounding its replication by R+C−1.
type Grid struct {
	Seed uint64
}

// Name returns the display label.
func (Grid) Name() string { return "2D-R." }

// Partition is the deprecated v1 shim over the stream core.
func (gr Grid) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return partition.Legacy(g, numParts, gr.Stream)
}

// Stream is the streaming core: one pass, no state beyond the owner array.
func (gr Grid) Stream(ctx context.Context, src graph.Source, numParts int, st *partition.Stats) (*partition.Partitioning, error) {
	r := 1
	for (r+1)*(r+1) <= numParts {
		r++
	}
	c := (numParts + r - 1) / r
	_, ne, err := partition.Counts(ctx, src)
	if err != nil {
		return nil, err
	}
	p := partition.New(numParts, ne)
	st.PeakMemBytes += graph.SourceBufferBytes
	err = streamEdges(ctx, src, func(pos int64, u, v graph.Vertex) {
		gi := int(hashU32(u, 0xDEC0DE^gr.Seed) % uint64(r))
		gj := int(hashU32(v, 0xC0FFEE^gr.Seed) % uint64(c))
		p.Owner[pos] = int32((gi*c + gj) % numParts)
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// DBH is degree-based hashing (Xie et al., NIPS'14): each edge is hashed by
// its lower-degree endpoint, so high-degree vertices are cut while low-degree
// vertices stay whole. Degrees come from a counting pass over the source.
type DBH struct {
	Seed uint64
}

// Name returns the display label.
func (DBH) Name() string { return "DBH" }

// Partition is the deprecated v1 shim over the stream core.
func (d DBH) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return partition.Legacy(g, numParts, d.Stream)
}

// Stream is the streaming core: a degree pass, then the hash pass.
func (d DBH) Stream(ctx context.Context, src graph.Source, numParts int, st *partition.Stats) (*partition.Partitioning, error) {
	deg, nv, ne, err := partition.DegreesAndCounts(ctx, src)
	if err != nil {
		return nil, err
	}
	p := partition.New(numParts, ne)
	st.PeakMemBytes += int64(nv)*4 + graph.SourceBufferBytes
	err = streamEdges(ctx, src, func(pos int64, u, v graph.Vertex) {
		pivot := u
		if deg[v] < deg[u] {
			pivot = v
		}
		p.Owner[pos] = int32(hashU32(pivot, d.Seed) % uint64(numParts))
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Hybrid is PowerLyra's hybrid-cut: edges of a low-degree vertex are grouped
// on the hash of that vertex (like an edge-cut), while edges whose chosen
// endpoint is high-degree fall back to hashing the other endpoint
// (like a vertex-cut). Threshold is the degree boundary θ (PowerLyra's
// default is 100).
type Hybrid struct {
	Seed      uint64
	Threshold int64
}

// Name returns the display label.
func (Hybrid) Name() string { return "Hybrid" }

// Partition is the deprecated v1 shim over the stream core.
func (h Hybrid) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return partition.Legacy(g, numParts, h.Stream)
}

// Stream is the streaming core: a degree pass, then the hybrid rule pass.
func (h Hybrid) Stream(ctx context.Context, src graph.Source, numParts int, st *partition.Stats) (*partition.Partitioning, error) {
	thr := h.Threshold
	if thr <= 0 {
		thr = 100
	}
	deg, nv, ne, err := partition.DegreesAndCounts(ctx, src)
	if err != nil {
		return nil, err
	}
	p := partition.New(numParts, ne)
	st.PeakMemBytes += int64(nv)*4 + graph.SourceBufferBytes
	err = streamEdges(ctx, src, func(pos int64, u, v graph.Vertex) {
		p.Owner[pos] = h.owner(deg, u, v, thr, numParts)
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (h Hybrid) owner(deg []uint32, u, v graph.Vertex, thr int64, numParts int) int32 {
	// Treat the canonical V endpoint as the "destination".
	if int64(deg[v]) <= thr {
		return int32(hashU32(v, h.Seed) % uint64(numParts))
	}
	return int32(hashU32(u, h.Seed) % uint64(numParts))
}
