// Package hashpart implements the hash-based edge partitioners the paper
// compares against (§2.2, §7.1): Random (1D hash), Grid (2D hash), DBH
// (degree-based hashing, Xie et al. NIPS'14), Hybrid (PowerLyra's hybrid-cut)
// and the greedy/refined variants Oblivious (PowerGraph) and Hybrid-Ginger
// (PowerLyra). These are fast and scalable but low quality; they anchor the
// quality comparisons of Fig. 8 and Table 5.
package hashpart

import (
	"context"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// splitmix64 mixes x into a well-distributed 64-bit value.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashU32(v uint32, salt uint64) uint64 { return splitmix64(uint64(v) ^ salt) }

// checkEdge polls ctx every partition.CheckEvery edges of a hash loop.
func checkEdge(ctx context.Context, i int) error {
	if i%partition.CheckEvery == 0 {
		return ctx.Err()
	}
	return nil
}

// Random is 1D hash partitioning: every edge lands on a uniformly random
// partition.
type Random struct {
	Seed uint64
}

// Name returns the display label.
func (Random) Name() string { return "Rand." }

// Partition computes the assignment without cancellation support.
func (r Random) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return r.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is the hash loop; it polls ctx every partition.CheckEvery
// edges.
func (r Random) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	p := partition.New(numParts, g.NumEdges())
	for i, e := range g.Edges() {
		if err := checkEdge(ctx, i); err != nil {
			return nil, err
		}
		h := splitmix64(uint64(e.U)<<32 | uint64(e.V) ^ r.Seed)
		p.Owner[i] = int32(h % uint64(numParts))
	}
	return p, nil
}

// Grid is 2D hash partitioning: machines form an R×C grid and edge (u,v) is
// assigned to cell (h(u) mod R, h(v) mod C). A vertex's replicas are confined
// to one grid row and one column, bounding its replication by R+C−1.
type Grid struct {
	Seed uint64
}

// Name returns the display label.
func (Grid) Name() string { return "2D-R." }

// Partition computes the assignment without cancellation support.
func (gr Grid) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return gr.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is the hash loop; it polls ctx every partition.CheckEvery
// edges.
func (gr Grid) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	r := 1
	for (r+1)*(r+1) <= numParts {
		r++
	}
	c := (numParts + r - 1) / r
	p := partition.New(numParts, g.NumEdges())
	for i, e := range g.Edges() {
		if err := checkEdge(ctx, i); err != nil {
			return nil, err
		}
		gi := int(hashU32(e.U, 0xDEC0DE^gr.Seed) % uint64(r))
		gj := int(hashU32(e.V, 0xC0FFEE^gr.Seed) % uint64(c))
		p.Owner[i] = int32((gi*c + gj) % numParts)
	}
	return p, nil
}

// DBH is degree-based hashing (Xie et al., NIPS'14): each edge is hashed by
// its lower-degree endpoint, so high-degree vertices are cut while low-degree
// vertices stay whole.
type DBH struct {
	Seed uint64
}

// Name returns the display label.
func (DBH) Name() string { return "DBH" }

// Partition computes the assignment without cancellation support.
func (d DBH) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return d.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is the hash loop; it polls ctx every partition.CheckEvery
// edges.
func (d DBH) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	p := partition.New(numParts, g.NumEdges())
	for i, e := range g.Edges() {
		if err := checkEdge(ctx, i); err != nil {
			return nil, err
		}
		pivot := e.U
		if g.Degree(e.V) < g.Degree(e.U) {
			pivot = e.V
		}
		p.Owner[i] = int32(hashU32(pivot, d.Seed) % uint64(numParts))
	}
	return p, nil
}

// Hybrid is PowerLyra's hybrid-cut: edges of a low-degree vertex are grouped
// on the hash of that vertex (like an edge-cut), while edges whose chosen
// endpoint is high-degree fall back to hashing the other endpoint
// (like a vertex-cut). Threshold is the degree boundary θ (PowerLyra's
// default is 100).
type Hybrid struct {
	Seed      uint64
	Threshold int64
}

// Name returns the display label.
func (Hybrid) Name() string { return "Hybrid" }

// Partition computes the assignment without cancellation support.
func (h Hybrid) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return h.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is the hash loop; it polls ctx every partition.CheckEvery
// edges.
func (h Hybrid) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	thr := h.Threshold
	if thr <= 0 {
		thr = 100
	}
	p := partition.New(numParts, g.NumEdges())
	for i, e := range g.Edges() {
		if err := checkEdge(ctx, i); err != nil {
			return nil, err
		}
		p.Owner[i] = h.owner(g, e, thr, numParts)
	}
	return p, nil
}

func (h Hybrid) owner(g *graph.Graph, e graph.Edge, thr int64, numParts int) int32 {
	// Treat the canonical V endpoint as the "destination".
	if g.Degree(e.V) <= thr {
		return int32(hashU32(e.V, h.Seed) % uint64(numParts))
	}
	return int32(hashU32(e.U, h.Seed) % uint64(numParts))
}
