package hashpart

import (
	"context"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

func init() {
	methods.Register(methods.Descriptor{
		Name:    "random",
		Aliases: []string{"rand", "1d"},
		Summary: "1D hash: every edge lands on a uniformly random partition",
		Streams: true,
		Factory: func() partition.Partitioner {
			return partition.StreamMethod{Label: "Rand.", Core: func(ctx context.Context, src graph.Source, spec partition.Spec, st *partition.Stats) (*partition.Partitioning, error) {
				return Random{Seed: uint64(spec.Seed)}.Stream(ctx, src, spec.NumParts, st)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "grid",
		Aliases: []string{"2d", "2d-random"},
		Summary: "2D hash: edges land on an R×C grid cell, bounding replication by R+C−1",
		Streams: true,
		Factory: func() partition.Partitioner {
			return partition.StreamMethod{Label: "2D-R.", Core: func(ctx context.Context, src graph.Source, spec partition.Spec, st *partition.Stats) (*partition.Partitioning, error) {
				return Grid{Seed: uint64(spec.Seed)}.Stream(ctx, src, spec.NumParts, st)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "dbh",
		Summary: "degree-based hashing: edges hash by their lower-degree endpoint (Xie et al., NIPS'14)",
		Streams: true,
		Factory: func() partition.Partitioner {
			return partition.StreamMethod{Label: "DBH", Core: func(ctx context.Context, src graph.Source, spec partition.Spec, st *partition.Stats) (*partition.Partitioning, error) {
				return DBH{Seed: uint64(spec.Seed)}.Stream(ctx, src, spec.NumParts, st)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "hybrid",
		Summary: "PowerLyra hybrid-cut: low-degree destinations group their edges, high-degree fall back to source hash",
		Streams: true,
		Params: []methods.ParamSpec{
			{Name: "threshold", Kind: methods.Int, Default: 100, Doc: "degree boundary θ between low- and high-degree handling", Min: 1, Max: 1 << 30, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.StreamMethod{Label: "Hybrid", Core: func(ctx context.Context, src graph.Source, spec partition.Spec, st *partition.Stats) (*partition.Partitioning, error) {
				return Hybrid{
					Seed:      uint64(spec.Seed),
					Threshold: int64(spec.Int("threshold", 100)),
				}.Stream(ctx, src, spec.NumParts, st)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "oblivious",
		Aliases: []string{"obli"},
		Summary: "PowerGraph greedy streaming placement over endpoint replica sets (Gonzalez et al., OSDI'12)",
		Streams: true,
		Factory: func() partition.Partitioner {
			return partition.StreamMethod{Label: "Obli.", Shuffle: true, Core: func(ctx context.Context, src graph.Source, spec partition.Spec, st *partition.Stats) (*partition.Partitioning, error) {
				return Oblivious{}.Stream(ctx, src, spec.NumParts, st)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "ginger",
		Aliases: []string{"hybridginger", "h.g."},
		Summary: "PowerLyra hybrid-cut plus Ginger refinement passes (Chen et al., EuroSys'15)",
		Params: []methods.ParamSpec{
			{Name: "threshold", Kind: methods.Int, Default: 100, Doc: "degree boundary θ of the hybrid-cut phase", Min: 1, Max: 1 << 30, HasBounds: true},
			{Name: "passes", Kind: methods.Int, Default: 5, Doc: "Ginger refinement passes", Min: 1, Max: 1 << 20, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.Method{Label: "H.G.", Core: func(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Partitioning, error) {
				return HybridGinger{
					Seed:      uint64(spec.Seed),
					Threshold: int64(spec.Int("threshold", 100)),
					Passes:    spec.Int("passes", 5),
				}.PartitionCtx(ctx, g, spec.NumParts)
			}}
		},
	})
}
