package hashpart

import (
	"context"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// Oblivious is PowerGraph's greedy streaming heuristic (Gonzalez et al.,
// OSDI'12): edges are streamed and each is placed using the classic four
// rules over the endpoints' replica sets A(u), A(v):
//
//  1. A(u)∩A(v) ≠ ∅            → least-loaded common partition
//  2. both non-empty, disjoint  → least-loaded of A(u)∪A(v)
//  3. exactly one non-empty     → least-loaded of that set
//  4. both empty                → least-loaded partition overall
//
// "Oblivious" refers to each machine running the heuristic over its own
// stream without coordination; we model the single-stream variant, which is
// the stronger (coordinated) end of PowerGraph's reported range. The core
// is a true single pass with |V|-dense replica state.
type Oblivious struct {
	// Seed drives the stream shuffle of the legacy Partition shim; under
	// the registry the shuffle uses spec.Seed instead.
	Seed int64
}

// Name returns the display label.
func (Oblivious) Name() string { return "Obli." }

// Partition is the deprecated v1 shim over the shuffled stream core.
func (o Oblivious) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return partition.Legacy(g, numParts, func(ctx context.Context, src graph.Source, n int, st *partition.Stats) (*partition.Partitioning, error) {
		return o.Stream(ctx, graph.Shuffled(src, o.Seed), n, st)
	})
}

// Stream is the greedy streaming core; it polls ctx every
// partition.CheckEvery edges.
func (o Oblivious) Stream(ctx context.Context, src graph.Source, numParts int, st *partition.Stats) (*partition.Partitioning, error) {
	nv, ne, err := partition.Counts(ctx, src)
	if err != nil {
		return nil, err
	}
	p := partition.New(numParts, ne)
	replicas := partition.NewReplicaSets(numParts, nv)
	sizes := make([]int64, numParts)
	scratch := bitset.New(numParts)
	st.PeakMemBytes += replicas.Bytes() + int64(numParts)*8 + graph.SourceBufferBytes
	err = streamEdges(ctx, src, func(pos int64, u, v graph.Vertex) {
		q := greedyPlace(replicas.Row(u), replicas.Row(v), sizes, scratch)
		p.Owner[pos] = q
		replicas.Set(u, int(q))
		replicas.Set(v, int(q))
		sizes[q]++
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// greedyPlace applies the four PowerGraph rules.
func greedyPlace(au, av bitset.Set, sizes []int64, scratch bitset.Set) int32 {
	if bitset.IntersectInto(scratch, au, av) {
		return leastLoadedIn(scratch, sizes)
	}
	ue, ve := au.Empty(), av.Empty()
	switch {
	case !ue && !ve:
		scratch.Reset()
		scratch.Or(au)
		scratch.Or(av)
		return leastLoadedIn(scratch, sizes)
	case !ue:
		return leastLoadedIn(au, sizes)
	case !ve:
		return leastLoadedIn(av, sizes)
	}
	return leastLoaded(sizes)
}

func leastLoadedIn(s bitset.Set, sizes []int64) int32 {
	best := int32(-1)
	var bestSize int64
	s.ForEach(func(q int) {
		if best == -1 || sizes[q] < bestSize {
			best = int32(q)
			bestSize = sizes[q]
		}
	})
	return best
}

func leastLoaded(sizes []int64) int32 {
	best := int32(0)
	for q := 1; q < len(sizes); q++ {
		if sizes[q] < sizes[best] {
			best = int32(q)
		}
	}
	return best
}

// HybridGinger is PowerLyra's Hybrid + Ginger refinement (Chen et al.,
// EuroSys'15): after a hybrid-cut pass, low-degree vertices are migrated for
// a fixed number of passes to the partition that maximises the Fennel-style
// objective |N(v) ∩ V(Eq)| − γ·(|Vq| + |Eq|·balance), moving each vertex's
// whole low-degree edge group at once. The refinement iterates over vertex
// neighborhoods, so this method stays graph-bound (not stream-capable): the
// registry materializes sources for it.
type HybridGinger struct {
	Seed      uint64
	Threshold int64
	Passes    int
}

// Name returns the display label.
func (HybridGinger) Name() string { return "H.G." }

// Partition computes the assignment without cancellation support.
//
// Deprecated: v1 shim; use PartitionCtx or the registry.
func (hg HybridGinger) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return hg.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx runs hybrid-cut plus Ginger refinement; it polls ctx once
// per vertex scan and per re-materialisation pass.
func (hg HybridGinger) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	thr := hg.Threshold
	if thr <= 0 {
		thr = 100
	}
	passes := hg.Passes
	if passes <= 0 {
		passes = 5
	}
	var st partition.Stats
	hy := Hybrid{Seed: hg.Seed, Threshold: thr}
	p, err := hy.Stream(ctx, graph.SourceOf(g), numParts, &st)
	if err != nil {
		return nil, err
	}
	// vertLabel[v] = current partition of v's low-degree edge group (only
	// meaningful for low-degree canonical-destination vertices).
	n := int(g.NumVertices())
	vertLabel := make([]int32, n)
	isGrouped := make([]bool, n)
	for v := 0; v < n; v++ {
		if g.Degree(uint32(v)) <= thr {
			vertLabel[v] = int32(hashU32(uint32(v), hg.Seed) % uint64(numParts))
			isGrouped[v] = true
		}
	}
	sizes := p.EdgeCounts()
	mean := float64(g.NumEdges()) / float64(numParts)
	gamma := 1.5
	neigh := make([]int64, numParts)
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for v := 0; v < n; v++ {
			if err := checkAt(ctx, v); err != nil {
				return nil, err
			}
			if !isGrouped[v] {
				continue
			}
			for q := range neigh {
				neigh[q] = 0
			}
			for _, u := range g.Neighbors(uint32(v)) {
				if isGrouped[u] {
					neigh[vertLabel[u]]++
				}
			}
			best := vertLabel[v]
			bestScore := score(neigh[best], sizes[best], mean, gamma)
			for q := 0; q < numParts; q++ {
				if s := score(neigh[q], sizes[q], mean, gamma); s > bestScore {
					best = int32(q)
					bestScore = s
				}
			}
			if best != vertLabel[v] {
				vertLabel[v] = best
				moved++
			}
		}
		// Re-materialise the edge assignment from vertex labels.
		for q := range sizes {
			sizes[q] = 0
		}
		for i, e := range g.Edges() {
			dst := e.V
			if g.Degree(dst) <= thr {
				p.Owner[i] = vertLabel[dst]
			} else {
				p.Owner[i] = int32(hashU32(e.U, hg.Seed) % uint64(numParts))
			}
			sizes[p.Owner[i]]++
		}
		if moved == 0 {
			break
		}
	}
	return p, nil
}

func score(coLocated, size int64, mean, gamma float64) float64 {
	return float64(coLocated) - gamma*float64(size)/mean
}
