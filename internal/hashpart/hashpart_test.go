package hashpart

import (
	"testing"
	"testing/quick"

	"github.com/distributedne/dne/internal/bitset"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

func testGraph() *graph.Graph { return gen.RMAT(11, 8, 5) }

// edgePartitioner is the concrete v1-style surface the core algorithms
// keep; the v2 partition.Partitioner wrappers are tested via the registry
// conformance suite.
type edgePartitioner interface {
	Name() string
	Partition(*graph.Graph, int) (*partition.Partitioning, error)
}

func validate(t *testing.T, p edgePartitioner, parts int) partition.Quality {
	t.Helper()
	g := testGraph()
	pt, err := p.Partition(g, parts)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return pt.Measure(g)
}

func TestRandomBalance(t *testing.T) {
	q := validate(t, Random{Seed: 1}, 16)
	// Hash partitioning balances edges nearly perfectly (paper Table 5:
	// EB = 1.0).
	if q.EdgeBalance > 1.1 {
		t.Errorf("Random edge balance %.3f, want ~1.0", q.EdgeBalance)
	}
}

func TestGridConfinesVertexReplicas(t *testing.T) {
	g := testGraph()
	const parts = 16 // 4×4 grid
	pt, err := Grid{Seed: 1}.Partition(g, parts)
	if err != nil {
		t.Fatal(err)
	}
	// Row+column of a 4×4 grid = at most 7 distinct partitions per vertex.
	perVertex := make(map[graph.Vertex]map[int32]bool)
	for i, e := range g.Edges() {
		for _, v := range [2]graph.Vertex{e.U, e.V} {
			if perVertex[v] == nil {
				perVertex[v] = map[int32]bool{}
			}
			perVertex[v][pt.Owner[i]] = true
		}
	}
	for v, s := range perVertex {
		if len(s) > 7 {
			t.Fatalf("vertex %d replicated on %d partitions, grid bound is 7", v, len(s))
		}
	}
}

func TestGridBeatsRandom(t *testing.T) {
	qr := validate(t, Random{Seed: 1}, 64)
	qg := validate(t, Grid{Seed: 1}, 64)
	if qg.ReplicationFactor >= qr.ReplicationFactor {
		t.Errorf("Grid RF %.3f should beat Random RF %.3f", qg.ReplicationFactor, qr.ReplicationFactor)
	}
}

func TestDBHBeatsRandom(t *testing.T) {
	qr := validate(t, Random{Seed: 1}, 64)
	qd := validate(t, DBH{Seed: 1}, 64)
	if qd.ReplicationFactor >= qr.ReplicationFactor {
		t.Errorf("DBH RF %.3f should beat Random RF %.3f", qd.ReplicationFactor, qr.ReplicationFactor)
	}
}

func TestObliviousBeatsPlainHash(t *testing.T) {
	qr := validate(t, Random{Seed: 1}, 16)
	qo := validate(t, Oblivious{Seed: 1}, 16)
	if qo.ReplicationFactor >= qr.ReplicationFactor {
		t.Errorf("Oblivious RF %.3f should beat Random RF %.3f", qo.ReplicationFactor, qr.ReplicationFactor)
	}
}

func TestHybridGingerImprovesHybrid(t *testing.T) {
	qh := validate(t, Hybrid{Seed: 1}, 16)
	qg := validate(t, HybridGinger{Seed: 1}, 16)
	if qg.ReplicationFactor > qh.ReplicationFactor*1.05 {
		t.Errorf("HybridGinger RF %.3f should not regress Hybrid RF %.3f",
			qg.ReplicationFactor, qh.ReplicationFactor)
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph()
	for _, p := range []edgePartitioner{
		Random{Seed: 3}, Grid{Seed: 3}, DBH{Seed: 3}, Hybrid{Seed: 3},
		Oblivious{Seed: 3}, HybridGinger{Seed: 3},
	} {
		a, err := p.Partition(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := p.Partition(g, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a.Owner {
			if a.Owner[i] != b.Owner[i] {
				t.Fatalf("%s not deterministic at edge %d", p.Name(), i)
			}
		}
	}
}

func TestQuickOwnersInRange(t *testing.T) {
	g := gen.RMAT(8, 4, 2)
	f := func(seed uint64, partsRaw uint8) bool {
		parts := int(partsRaw%16) + 1
		pt, err := Random{Seed: seed}.Partition(g, parts)
		if err != nil {
			return false
		}
		return pt.Validate(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGreedyPlaceRules(t *testing.T) {
	sizes := []int64{5, 1, 3}
	mk := func(bits ...int) bitset.Set {
		s := bitset.New(3)
		for _, b := range bits {
			s.Set(b)
		}
		return s
	}
	// Rule 1: intersection wins even when another partition is lighter.
	if q := greedyPlace(mk(0, 2), mk(2), sizes, bitset.New(3)); q != 2 {
		t.Errorf("rule 1: got %d, want 2", q)
	}
	// Rule 2: disjoint, both non-empty → least loaded of the union.
	if q := greedyPlace(mk(0), mk(1), sizes, bitset.New(3)); q != 1 {
		t.Errorf("rule 2: got %d, want 1", q)
	}
	// Rule 3: one empty → least loaded of the other.
	if q := greedyPlace(mk(0, 2), mk(), sizes, bitset.New(3)); q != 2 {
		t.Errorf("rule 3: got %d, want 2", q)
	}
	// Rule 4: both empty → least loaded overall.
	if q := greedyPlace(mk(), mk(), sizes, bitset.New(3)); q != 1 {
		t.Errorf("rule 4: got %d, want 1", q)
	}
}
