package lppart

import (
	"context"
	"time"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

// distLPPartitioner adapts DistLP to the v2 interface, folding the
// distributed run's footprint and traffic into Result.Stats.
type distLPPartitioner struct{}

// Name implements partition.Partitioner.
func (distLPPartitioner) Name() string { return "DistLP" }

// Partition implements partition.Partitioner.
func (distLPPartitioner) Partition(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	d := &DistLP{
		Iterations: spec.Int("iterations", 0),
		Capacity:   spec.Float("capacity", 1.05),
		Seed:       spec.Seed,
	}
	start := time.Now()
	p, err := d.PartitionCtx(ctx, g, spec.NumParts)
	coreElapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	out := &partition.Result{Partitioning: p}
	st := &out.Stats
	st.Method = "distlp"
	st.NumParts = spec.NumParts
	st.AddPhase("propagate", coreElapsed)
	if d.Last != nil {
		st.PeakMemBytes = d.Last.MemBytes
		st.CommBytes = d.Last.CommBytes
		st.CommMessages = d.Last.CommMessages
		st.Iterations = d.Last.Supersteps
	}
	out.Finish(g, start)
	return out, nil
}

func init() {
	methods.Register(methods.Descriptor{
		Name:    "spinner",
		Summary: "Spinner label propagation: vertices adopt the most frequent neighbor label under a load penalty (Martella et al.)",
		Params: []methods.ParamSpec{
			{Name: "iterations", Kind: methods.Int, Default: 20, Doc: "label-propagation iterations", Min: 1, Max: 1 << 20, HasBounds: true},
			{Name: "capacity", Kind: methods.Float, Default: 1.05, Doc: "capacity slack c of the load penalty", Min: 1, Max: 16, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.Method{Label: "Spinner", Core: func(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Partitioning, error) {
				return Spinner{
					Iterations: spec.Int("iterations", 0),
					Capacity:   spec.Float("capacity", 1.05),
					Seed:       spec.Seed,
				}.PartitionCtx(ctx, g, spec.NumParts)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "xtrapulp",
		Aliases: []string{"x.p."},
		Summary: "PuLP-style BFS-seeded vertex partitioning with constrained label-propagation refinement",
		Params: []methods.ParamSpec{
			{Name: "iterations", Kind: methods.Int, Default: 16, Doc: "refinement iterations", Min: 1, Max: 1 << 20, HasBounds: true},
		},
		Factory: func() partition.Partitioner {
			return partition.Method{Label: "X.P.", Core: func(ctx context.Context, g *graph.Graph, spec partition.Spec) (*partition.Partitioning, error) {
				return XtraPuLP{
					Iterations: spec.Int("iterations", 0),
					Seed:       spec.Seed,
				}.PartitionCtx(ctx, g, spec.NumParts)
			}}
		},
	})
	methods.Register(methods.Descriptor{
		Name:    "distlp",
		Summary: "distributed Spinner over the in-process message-passing cluster, with vertex-partitioned memory accounting",
		Params: []methods.ParamSpec{
			{Name: "iterations", Kind: methods.Int, Default: 20, Doc: "label-propagation supersteps", Min: 1, Max: 1 << 20, HasBounds: true},
			{Name: "capacity", Kind: methods.Float, Default: 1.05, Doc: "capacity slack c of the load penalty", Min: 1, Max: 16, HasBounds: true},
		},
		Factory: func() partition.Partitioner { return distLPPartitioner{} },
	})
}
