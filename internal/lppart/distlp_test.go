package lppart

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/hashpart"
)

func TestDistLPValidAcrossPartCounts(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	for _, p := range []int{2, 5, 16} {
		d := &DistLP{Seed: 1}
		pt, err := d.Partition(g, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.Validate(g); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if d.Last == nil || d.Last.MemBytes <= 0 || d.Last.Supersteps <= 0 {
			t.Fatalf("P=%d: stats missing: %+v", p, d.Last)
		}
		if p > 1 && d.Last.CommBytes <= 0 {
			t.Fatalf("P=%d: no communication accounted", p)
		}
	}
}

func TestDistLPBeatsRandomOnRoads(t *testing.T) {
	// Same quality expectation as the sequential LP baselines: label
	// propagation finds near-planar structure.
	g := gen.Road(70, 70, 4)
	d := &DistLP{Seed: 1}
	dpt, err := d.Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	rpt, err := hashpart.Random{Seed: 1}.Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	dr := dpt.Measure(g).ReplicationFactor
	rr := rpt.Measure(g).ReplicationFactor
	if dr >= rr {
		t.Errorf("DistLP RF %.3f not below Random %.3f", dr, rr)
	}
}

func TestDistLPQualityTracksSequentialSpinner(t *testing.T) {
	// The distributed run uses the same objective as the sequential
	// Spinner; quality must land in the same class (within 40%).
	g := gen.RMAT(11, 8, 5)
	const p = 8
	d := &DistLP{Seed: 2}
	dpt, err := d.Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	spt, err := Spinner{Seed: 2}.Partition(g, p)
	if err != nil {
		t.Fatal(err)
	}
	dr := dpt.Measure(g).ReplicationFactor
	sr := spt.Measure(g).ReplicationFactor
	if dr > sr*1.4 {
		t.Errorf("DistLP RF %.3f more than 40%% above sequential Spinner %.3f", dr, sr)
	}
}

func TestDistLPMemoryModelsEdgeReplication(t *testing.T) {
	// The distributed vertex-partitioned layout stores each edge on both
	// endpoint machines: the footprint must exceed 2×4 bytes per edge from
	// adjacency targets alone.
	g := gen.RMAT(11, 16, 7)
	d := &DistLP{Seed: 3}
	if _, err := d.Partition(g, 16); err != nil {
		t.Fatal(err)
	}
	if d.Last.MemBytes < 8*g.NumEdges() {
		t.Errorf("distributed footprint %d below the 2-copies-of-targets floor %d",
			d.Last.MemBytes, 8*g.NumEdges())
	}
}

func TestDistLPDeterministicForSeed(t *testing.T) {
	g := gen.RMAT(9, 8, 9)
	a, err := (&DistLP{Seed: 7}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&DistLP{Seed: 7}).Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Owner {
		if a.Owner[i] != b.Owner[i] {
			t.Fatalf("owners differ at edge %d", i)
		}
	}
}
