// Package lppart implements the label-propagation vertex partitioners used
// as baselines in Fig. 8: Spinner (Martella et al., ICDE'17) and an
// XtraPuLP-style direct label-propagation partitioner (Slota et al.,
// IPDPS'17). Both produce vertex partitions; the paper converts those to
// edge partitions by assigning each edge to a random endpoint's partition
// (§7.1, after Bourse et al. KDD'14), which VertexToEdge implements.
package lppart

import (
	"context"
	"math/rand"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// VertexToEdge converts a vertex partitioning (labels) into an edge
// partitioning by assigning every edge to the partition of one of its
// endpoints, chosen uniformly at random — the conversion used in §7.1.
func VertexToEdge(g *graph.Graph, labels []int32, numParts int, seed int64) *partition.Partitioning {
	rng := rand.New(rand.NewSource(seed))
	p := partition.New(numParts, g.NumEdges())
	for i, e := range g.Edges() {
		if rng.Intn(2) == 0 {
			p.Owner[i] = labels[e.U]
		} else {
			p.Owner[i] = labels[e.V]
		}
	}
	return p
}

// Spinner is the label-propagation vertex partitioner: vertices start with
// random labels and iteratively adopt the label most frequent among their
// neighbors, discounted by a load penalty so partitions stay near capacity
// c·|E|·2/|P| in adjacent-edge weight.
type Spinner struct {
	// Iterations of label propagation (default 20).
	Iterations int
	// Capacity slack c (default 1.05).
	Capacity float64
	Seed     int64
}

// Name returns the display label.
func (Spinner) Name() string { return "Spinner" }

// Labels runs the label propagation and returns the vertex labels.
func (s Spinner) Labels(g *graph.Graph, numParts int) []int32 {
	labels, _ := s.LabelsCtx(context.Background(), g, numParts)
	return labels
}

// LabelsCtx is the label-propagation core; it polls ctx every
// partition.CheckEvery vertex visits.
func (s Spinner) LabelsCtx(ctx context.Context, g *graph.Graph, numParts int) ([]int32, error) {
	iters := s.Iterations
	if iters <= 0 {
		iters = 20
	}
	capacity := s.Capacity
	if capacity == 0 {
		capacity = 1.05
	}
	rng := rand.New(rand.NewSource(s.Seed))
	n := int(g.NumVertices())
	labels := make([]int32, n)
	load := make([]int64, numParts) // degree-weighted load per partition
	for v := 0; v < n; v++ {
		labels[v] = int32(rng.Intn(numParts))
		load[labels[v]] += g.Degree(uint32(v))
	}
	maxLoad := capacity * 2 * float64(g.NumEdges()) / float64(numParts)
	counts := make([]int64, numParts)
	for it := 0; it < iters; it++ {
		moved := 0
		for v := 0; v < n; v++ {
			if v%partition.CheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			for q := range counts {
				counts[q] = 0
			}
			for _, u := range g.Neighbors(uint32(v)) {
				counts[labels[u]]++
			}
			cur := labels[v]
			best := cur
			bestScore := score(counts[cur], load[cur], maxLoad)
			for q := 0; q < numParts; q++ {
				if s := score(counts[q], load[q], maxLoad); s > bestScore {
					best = int32(q)
					bestScore = s
				}
			}
			if best != cur {
				d := g.Degree(uint32(v))
				load[cur] -= d
				load[best] += d
				labels[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return labels, nil
}

// Partition computes the assignment without cancellation support.
func (s Spinner) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return s.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx runs the label propagation under ctx and converts the vertex
// labels to an edge partitioning.
func (s Spinner) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	labels, err := s.LabelsCtx(ctx, g, numParts)
	if err != nil {
		return nil, err
	}
	return VertexToEdge(g, labels, numParts, s.Seed+1), nil
}

// score is the Spinner objective: neighbor affinity scaled by remaining
// capacity.
func score(affinity, load int64, maxLoad float64) float64 {
	penalty := 1 - float64(load)/maxLoad
	if penalty < 0 {
		penalty = 0
	}
	return float64(affinity) * penalty
}

// XtraPuLP is a PuLP-style direct vertex partitioner: P BFS-grown seed
// regions give the initial assignment (no random scatter, the property §7.2
// credits it for), followed by constrained label-propagation refinement
// alternating between a vertex-balance phase and an edge-balance phase.
type XtraPuLP struct {
	Iterations int
	Seed       int64
}

// Name returns the display label.
func (XtraPuLP) Name() string { return "X.P." }

// Labels computes the vertex labels.
func (x XtraPuLP) Labels(g *graph.Graph, numParts int) []int32 {
	labels, _ := x.LabelsCtx(context.Background(), g, numParts)
	return labels
}

// LabelsCtx is the BFS-seeding + constrained-LP core; it polls ctx every
// partition.CheckEvery vertex visits.
func (x XtraPuLP) LabelsCtx(ctx context.Context, g *graph.Graph, numParts int) ([]int32, error) {
	iters := x.Iterations
	if iters <= 0 {
		iters = 16
	}
	rng := rand.New(rand.NewSource(x.Seed))
	n := int(g.NumVertices())
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = -1
	}
	// Multi-source BFS from numParts random seeds, growing regions in
	// round-robin so sizes stay even.
	queues := make([][]graph.Vertex, numParts)
	for q := 0; q < numParts; q++ {
		for try := 0; try < 64; try++ {
			v := graph.Vertex(rng.Intn(n))
			if labels[v] == -1 {
				labels[v] = int32(q)
				queues[q] = append(queues[q], v)
				break
			}
		}
	}
	active := true
	visited := 0
	for active {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		active = false
		for q := 0; q < numParts; q++ {
			if len(queues[q]) == 0 {
				continue
			}
			v := queues[q][0]
			queues[q] = queues[q][1:]
			for _, u := range g.Neighbors(v) {
				if labels[u] == -1 {
					labels[u] = int32(q)
					queues[q] = append(queues[q], u)
				}
			}
			if len(queues[q]) > 0 {
				active = true
			}
		}
	}
	// Unreached vertices (disconnected components): hash-assign.
	for v := 0; v < n; v++ {
		if labels[v] == -1 {
			labels[v] = int32(rng.Intn(numParts))
		}
	}
	// Constrained LP refinement: alternate vertex-balanced and
	// edge-balanced passes.
	vLoad := make([]int64, numParts)
	eLoad := make([]int64, numParts)
	for v := 0; v < n; v++ {
		vLoad[labels[v]]++
		eLoad[labels[v]] += g.Degree(uint32(v))
	}
	vCap := int64(1.1 * float64(n) / float64(numParts))
	eCap := int64(1.1 * 2 * float64(g.NumEdges()) / float64(numParts))
	counts := make([]int64, numParts)
	for it := 0; it < iters; it++ {
		edgePhase := it%2 == 1
		moved := 0
		for v := 0; v < n; v++ {
			visited++
			if visited%partition.CheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			for q := range counts {
				counts[q] = 0
			}
			for _, u := range g.Neighbors(uint32(v)) {
				counts[labels[u]]++
			}
			cur := labels[v]
			best := cur
			for q := int32(0); q < int32(numParts); q++ {
				if q == cur || counts[q] <= counts[best] {
					continue
				}
				if edgePhase {
					if eLoad[q]+g.Degree(uint32(v)) > eCap {
						continue
					}
				} else if vLoad[q]+1 > vCap {
					continue
				}
				best = q
			}
			if best != cur {
				vLoad[cur]--
				vLoad[best]++
				d := g.Degree(uint32(v))
				eLoad[cur] -= d
				eLoad[best] += d
				labels[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return labels, nil
}

// Partition computes the assignment without cancellation support.
func (x XtraPuLP) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return x.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx runs the partitioner under ctx and converts the vertex
// labels to an edge partitioning.
func (x XtraPuLP) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	labels, err := x.LabelsCtx(ctx, g, numParts)
	if err != nil {
		return nil, err
	}
	return VertexToEdge(g, labels, numParts, x.Seed+1), nil
}
