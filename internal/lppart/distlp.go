package lppart

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// DistLP is Spinner/XtraPuLP as they actually run in the paper's
// comparisons: a *distributed* label-propagation vertex partitioner over
// the message-passing substrate. Vertices are 1D-hashed across |P| machines;
// each machine stores its vertices' full adjacency rows (so every edge is
// replicated on both endpoints' machines — the memory cost §4 attributes to
// vertex-partitioned layouts) plus ghost labels for remote neighbors.
// Each superstep every machine rescoreds its vertices with the Spinner
// objective against a globally gathered load vector and ships changed labels
// to the machines hosting their neighbors.
//
// The Last field exposes the run's distributed memory footprint and
// communication volume for Fig. 9 / Fig. 10-style accounting.
type DistLP struct {
	// Iterations of label propagation (default 20).
	Iterations int
	// Capacity slack c (default 1.05).
	Capacity float64
	Seed     int64

	// Last holds the previous run's execution metrics.
	Last *DistLPStats
}

// DistLPStats are one run's execution metrics, summed across machines.
type DistLPStats struct {
	// MemBytes is the distributed footprint: per-machine adjacency rows
	// (edges appear on both endpoint machines), owned labels and ghost
	// tables.
	MemBytes int64
	// CommBytes / CommMessages are the label-exchange traffic.
	CommBytes    int64
	CommMessages int64
	// Supersteps executed.
	Supersteps int
}

// Name implements partition.Partitioner.
func (*DistLP) Name() string { return "X.P." }

// MemBytes implements bench.MemReporter with the distributed footprint of
// the last run.
func (d *DistLP) MemBytes() int64 {
	if d.Last == nil {
		return 0
	}
	return d.Last.MemBytes
}

// vl is a vertex-label update on the wire.
type vl struct {
	V graph.Vertex
	L int32
}

// vlBody carries label updates.
type vlBody struct{ Pairs []vl }

// WireSize implements cluster.Body.
func (b vlBody) WireSize() int { return 8 * len(b.Pairs) }

// edgeOwnerBody ships final edge assignments to rank 0.
type edgeOwnerBody struct {
	Idx   []int64
	Owner []int32
}

// WireSize implements cluster.Body.
func (b edgeOwnerBody) WireSize() int { return 8*len(b.Idx) + 4*len(b.Owner) }

const (
	tagLabels cluster.Tag = cluster.TagUser + iota
	tagOwners
)

func init() {
	cluster.RegisterBody(vlBody{})
	cluster.RegisterBody(edgeOwnerBody{})
}

// Partition runs the distributed label propagation on numParts in-process
// machines and converts the vertex labels to an edge partitioning (§7.1
// conversion, done distributed: each edge is converted by the machine
// owning its canonical U endpoint).
func (d *DistLP) Partition(g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	return d.PartitionCtx(context.Background(), g, numParts)
}

// PartitionCtx is Partition with cancellation: each superstep ends with a
// collective all-gather of the machines' cancel flags, so every machine
// aborts at the same superstep boundary and the lock-step protocol stays
// deadlock-free.
func (d *DistLP) PartitionCtx(ctx context.Context, g *graph.Graph, numParts int) (*partition.Partitioning, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if numParts <= 0 {
		return nil, fmt.Errorf("lppart: numParts must be positive, got %d", numParts)
	}
	iters := d.Iterations
	if iters <= 0 {
		iters = 20
	}
	capacity := d.Capacity
	if capacity == 0 {
		capacity = 1.05
	}
	c := cluster.New(numParts)
	p := partition.New(numParts, g.NumEdges())
	stats := make([]DistLPStats, numParts)
	err := c.Run(func(comm cluster.Comm) error {
		return d.runMachine(ctx, comm, g, iters, capacity, &stats[comm.Rank()], p.Owner)
	})
	if err != nil {
		return nil, err
	}
	agg := &DistLPStats{}
	for _, s := range stats {
		agg.MemBytes += s.MemBytes
		agg.CommBytes += s.CommBytes
		agg.CommMessages += s.CommMessages
		if s.Supersteps > agg.Supersteps {
			agg.Supersteps = s.Supersteps
		}
	}
	d.Last = agg
	return p, nil
}

func (d *DistLP) runMachine(ctx context.Context, comm cluster.Comm, g *graph.Graph, iters int, capacity float64, st *DistLPStats, ownerOut []int32) error {
	pCount := comm.Size()
	rank := comm.Rank()
	owner := func(v graph.Vertex) int { return int(v) % pCount }

	// Owned vertices and their adjacency rows (views into g's CSR; the
	// footprint is charged as if copied, which a real deployment must).
	var owned []graph.Vertex
	for v := graph.Vertex(rank); v < graph.Vertex(g.NumVertices()); v += graph.Vertex(pCount) {
		owned = append(owned, v)
	}
	// Ghost table: labels of every remote neighbor, plus local labels.
	labels := make(map[graph.Vertex]int32)
	// Initial labels are a pure hash so every machine derives any vertex's
	// initial label without communication (Spinner's random init).
	initLabel := func(v graph.Vertex) int32 {
		return int32((uint64(v)*0x9e3779b97f4a7c15 + uint64(d.Seed)) >> 33 % uint64(pCount))
	}
	var adjEntries int64
	ghosts := make(map[graph.Vertex]struct{})
	for _, v := range owned {
		labels[v] = initLabel(v)
		adjEntries += g.Degree(v)
		for _, u := range g.Neighbors(v) {
			if owner(u) != rank {
				ghosts[u] = struct{}{}
			}
		}
	}
	//lint:ordered each key written independently with a pure function of the key
	for u := range ghosts {
		labels[u] = initLabel(u)
	}

	// Degree-weighted global loads via all-gather of local contributions.
	localLoad := make([]int64, pCount)
	for _, v := range owned {
		localLoad[labels[v]] += g.Degree(v)
	}
	loads := cluster.AllGatherSumVec(comm, localLoad)
	maxLoad := capacity * 2 * float64(g.NumEdges()) / float64(pCount)

	counts := make([]int64, pCount)
	outUpd := make([][]vl, pCount)
	for it := 0; it < iters; it++ {
		st.Supersteps++
		for q := 0; q < pCount; q++ {
			outUpd[q] = outUpd[q][:0]
		}
		moved := int64(0)
		for _, v := range owned {
			for q := range counts {
				counts[q] = 0
			}
			for _, u := range g.Neighbors(v) {
				counts[labels[u]]++
			}
			cur := labels[v]
			best := cur
			bestScore := score(counts[cur], loads[cur], maxLoad)
			for q := 0; q < pCount; q++ {
				if s := score(counts[q], loads[q], maxLoad); s > bestScore {
					best = int32(q)
					bestScore = s
				}
			}
			if best != cur {
				labels[v] = best
				moved++
				for _, u := range g.Neighbors(v) {
					if q := owner(u); q != rank {
						outUpd[q] = append(outUpd[q], vl{V: v, L: best})
					}
				}
			}
		}
		for q := 0; q < pCount; q++ {
			if q == rank {
				continue
			}
			comm.Send(q, tagLabels, vlBody{Pairs: dedupVL(outUpd[q])})
		}
		for _, m := range comm.RecvN(tagLabels, pCount-1) {
			for _, u := range m.Body.(vlBody).Pairs {
				if _, ok := labels[u.V]; ok {
					labels[u.V] = u.L
				}
			}
		}
		// Refresh global loads from local contributions.
		for q := range localLoad {
			localLoad[q] = 0
		}
		for _, v := range owned {
			localLoad[labels[v]] += g.Degree(v)
		}
		loads = cluster.AllGatherSumVec(comm, localLoad)
		movedSum := cluster.AllGatherSum(comm, moved)
		var cancelFlag int64
		if ctx.Err() != nil {
			cancelFlag = 1
		}
		// Decide on the gathered flag (identical on every machine), not the
		// racy local ctx, so all machines return at the same superstep.
		if cluster.AllGatherSum(comm, cancelFlag) > 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
			return context.Canceled
		}
		if movedSum == 0 {
			break
		}
	}

	// Distributed memory footprint: adjacency rows (targets 4B + per-vertex
	// offsets 8B), owned labels 4B, ghost table ~12B/entry (id + label +
	// index overhead).
	st.MemBytes = adjEntries*4 + int64(len(owned))*12 + int64(len(ghosts))*12

	// Edge conversion at the machine owning e.U (deterministic endpoint
	// pick by edge-index hash, matching VertexToEdge's coin flip in
	// distribution). Requires e.V's label: for owned e.V it is local;
	// otherwise it is in the ghost table iff some owned vertex neighbors
	// e.V — which e.U does.
	var idx []int64
	var own []int32
	for i, e := range g.Edges() {
		if owner(e.U) != rank {
			continue
		}
		var l int32
		if (uint64(i)*0xbf58476d1ce4e5b9)>>63 == 0 {
			l = labels[e.U]
		} else {
			l = labels[e.V]
		}
		idx = append(idx, int64(i))
		own = append(own, l)
	}
	st.CommBytes = comm.Stats().BytesSent.Load()
	st.CommMessages = comm.Stats().MessagesSent.Load()
	comm.Send(0, tagOwners, edgeOwnerBody{Idx: idx, Owner: own})
	if rank == 0 {
		for _, m := range comm.RecvN(tagOwners, pCount) {
			body := m.Body.(edgeOwnerBody)
			for i, gi := range body.Idx {
				ownerOut[gi] = body.Owner[i]
			}
		}
	}
	return nil
}

// dedupVL removes duplicate (V,L) pairs keeping the last label per vertex.
// The sort is the same pdqsort permutation sort.Slice ran (both stdlib
// implementations are generated from one algorithm), so which duplicate
// survives — and therefore the seeded partitioning — is unchanged.
func dedupVL(in []vl) []vl {
	if len(in) < 2 {
		return in
	}
	slices.SortFunc(in, func(a, b vl) int { return cmp.Compare(a.V, b.V) })
	out := in[:0]
	for i, p := range in {
		if i+1 < len(in) && in[i+1].V == p.V {
			continue
		}
		out = append(out, p)
	}
	return out
}
