package lppart

import (
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/hashpart"
	"github.com/distributedne/dne/internal/partition"
)

type edgePartitioner interface {
	Name() string
	Partition(*graph.Graph, int) (*partition.Partitioning, error)
}

func validate(t *testing.T, p edgePartitioner, g *graph.Graph, parts int) partition.Quality {
	t.Helper()
	pt, err := p.Partition(g, parts)
	if err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	if err := pt.Validate(g); err != nil {
		t.Fatalf("%s: %v", p.Name(), err)
	}
	return pt.Measure(g)
}

func TestSpinnerValid(t *testing.T) {
	g := gen.RMAT(11, 8, 3)
	validate(t, Spinner{Seed: 1}, g, 8)
}

func TestXtraPuLPValid(t *testing.T) {
	g := gen.RMAT(11, 8, 3)
	validate(t, XtraPuLP{Seed: 1}, g, 8)
}

func TestLPBeatsRandomOnRoads(t *testing.T) {
	// Label propagation finds the community structure of near-planar
	// graphs; both LP methods must clearly beat random hashing there.
	g := gen.Road(80, 80, 4)
	qr := validate(t, hashpart.Random{Seed: 1}, g, 16)
	qs := validate(t, Spinner{Seed: 1}, g, 16)
	qx := validate(t, XtraPuLP{Seed: 1}, g, 16)
	if qs.ReplicationFactor >= qr.ReplicationFactor {
		t.Errorf("Spinner RF %.3f should beat Random %.3f", qs.ReplicationFactor, qr.ReplicationFactor)
	}
	if qx.ReplicationFactor >= qr.ReplicationFactor {
		t.Errorf("XtraPuLP RF %.3f should beat Random %.3f", qx.ReplicationFactor, qr.ReplicationFactor)
	}
}

func TestVertexToEdgeRespectsLabels(t *testing.T) {
	g := graph.FromEdges(0, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	labels := []int32{0, 0, 1}
	pt := VertexToEdge(g, labels, 2, 1)
	// Edge {0,1}: both endpoints labelled 0 → must be 0. Edge {1,2}: either.
	if pt.Owner[0] != 0 {
		t.Errorf("edge {0,1} assigned %d, want 0", pt.Owner[0])
	}
	if pt.Owner[1] != 0 && pt.Owner[1] != 1 {
		t.Errorf("edge {1,2} assigned %d", pt.Owner[1])
	}
}

func TestLabelsInRange(t *testing.T) {
	g := gen.RMAT(10, 4, 9)
	for _, labels := range [][]int32{
		(Spinner{Seed: 2}).Labels(g, 5),
		(XtraPuLP{Seed: 2}).Labels(g, 5),
	} {
		if len(labels) != int(g.NumVertices()) {
			t.Fatal("label vector wrong length")
		}
		for v, l := range labels {
			if l < 0 || l >= 5 {
				t.Fatalf("vertex %d has out-of-range label %d", v, l)
			}
		}
	}
}

func TestXtraPuLPSeedsCoverDisconnected(t *testing.T) {
	// Disconnected graph: BFS seeds can't reach everything; stragglers must
	// still get valid labels.
	g := graph.FromEdges(0, []graph.Edge{
		{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}, {U: 6, V: 7},
	})
	validate(t, XtraPuLP{Seed: 1}, g, 4)
}
