package obs

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerRingWraparound fills the ring past capacity and checks the
// retained window is exactly the newest spans, oldest first, with the drop
// count accounting for the rest.
func TestTracerRingWraparound(t *testing.T) {
	const capacity = 8
	tr := NewTracer(capacity)
	for i := 0; i < 20; i++ {
		tr.Record(Span{Name: fmt.Sprintf("s%02d", i), Start: int64(i)})
	}
	spans := tr.Spans()
	if len(spans) != capacity {
		t.Fatalf("retained %d spans, want %d", len(spans), capacity)
	}
	for i, s := range spans {
		want := fmt.Sprintf("s%02d", 20-capacity+i)
		if s.Name != want {
			t.Fatalf("span %d = %s, want %s (oldest-first window)", i, s.Name, want)
		}
	}
	if d := tr.Dropped(); d != 20-capacity {
		t.Fatalf("dropped = %d, want %d", d, 20-capacity)
	}
}

func TestTracerUnderCapacity(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Span{Name: "only"})
	if spans := tr.Spans(); len(spans) != 1 || spans[0].Name != "only" {
		t.Fatalf("spans = %v", spans)
	}
	if tr.Dropped() != 0 {
		t.Fatal("nothing dropped yet")
	}
}

func TestStartEndSpan(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.Start("query", "store")
	sp.SetAttr("kind", "khop")
	time.Sleep(time.Millisecond)
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	s := spans[0]
	if s.Name != "query" || s.Cat != "store" || s.Attrs["kind"] != "khop" {
		t.Fatalf("span = %+v", s)
	}
	if s.Dur < int64(time.Millisecond) {
		t.Fatalf("dur %d below the slept millisecond", s.Dur)
	}
}

// TestRecordPhases reconstructs spans from duration-only phases: they must
// tile back to back and end at the given end time.
func TestRecordPhases(t *testing.T) {
	tr := NewTracer(8)
	end := time.Now()
	tr.RecordPhases("partition", end, []Phase{
		{Name: "expand", Elapsed: 30 * time.Millisecond},
		{Name: "allocate", Elapsed: 10 * time.Millisecond},
	}, map[string]string{"method": "dne"})
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "expand" || spans[1].Name != "allocate" {
		t.Fatalf("order: %s, %s", spans[0].Name, spans[1].Name)
	}
	if got := spans[0].Start + spans[0].Dur; got != spans[1].Start {
		t.Fatalf("phases must tile: expand ends %d, allocate starts %d", got, spans[1].Start)
	}
	if got := spans[1].Start + spans[1].Dur; got != end.UnixNano() {
		t.Fatalf("last phase must end at end: %d != %d", got, end.UnixNano())
	}
	if spans[0].Attrs["method"] != "dne" {
		t.Fatalf("attrs lost: %+v", spans[0].Attrs)
	}
}

func TestTracerDumpFormats(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(Span{Name: "a", Cat: "c1", Start: 1000, Dur: 500})
	tr.Record(Span{Name: "b", Cat: "c2", Start: 2000, Dur: 100})

	var jb strings.Builder
	if err := tr.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Dropped uint64 `json:"dropped"`
		Spans   []Span `json:"spans"`
	}
	if err := json.Unmarshal([]byte(jb.String()), &doc); err != nil {
		t.Fatalf("JSON dump does not parse: %v", err)
	}
	if len(doc.Spans) != 2 || doc.Spans[0].Name != "a" {
		t.Fatalf("JSON dump = %+v", doc)
	}

	var cb strings.Builder
	if err := tr.WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(cb.String()), &chrome); err != nil {
		t.Fatalf("Chrome dump does not parse: %v", err)
	}
	if len(chrome.TraceEvents) != 2 {
		t.Fatalf("chrome events = %+v", chrome)
	}
	ev := chrome.TraceEvents[0]
	if ev.Ph != "X" || ev.TS != 1.0 || ev.Dur != 0.5 {
		t.Fatalf("chrome event = %+v (ts/dur must be microseconds)", ev)
	}
	if chrome.TraceEvents[0].TID == chrome.TraceEvents[1].TID {
		t.Fatal("different categories must land on different tracks")
	}
}

// TestTracerConcurrent hammers Record/Spans under -race.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start("s", "cat")
				sp.End()
				if i%100 == 0 {
					_ = tr.Spans()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Dropped() + uint64(len(tr.Spans())); got != 8*500 {
		t.Fatalf("dropped+retained = %d, want %d", got, 8*500)
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Record(Span{Name: "x"})
	sp := tr.Start("a", "b")
	sp.SetAttr("k", "v")
	sp.End()
	tr.RecordPhases("c", time.Now(), []Phase{{Name: "p"}}, nil)
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be inert")
	}
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
}
