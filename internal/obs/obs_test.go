package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}

	// Nil handles are no-ops.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Set(1)
	if nc.Value() != 0 || ng.Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	if r.Counter("x", "h") != nil || r.Gauge("y", "h") != nil || r.Histogram("z", "h") != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	r.GaugeFunc("f", "h", func(emit func(v float64, kv ...string)) {})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Fatalf("nil registry exposition: err=%v out=%q", err, b.String())
	}
}

func TestRegistrySameFamilySameChild(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dne_test_total", "help", "kind", "x")
	b := r.Counter("dne_test_total", "help", "kind", "x")
	if a != b {
		t.Fatal("same family + labels must return the same counter")
	}
	c := r.Counter("dne_test_total", "help", "kind", "y")
	if a == c {
		t.Fatal("different labels must return different counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a family under a different type must panic")
		}
	}()
	r.Gauge("dne_test_total", "help")
}

// TestExpositionGolden locks the text exposition format: a counter family
// with two children, a gauge, a gauge-func family, and a histogram with a
// known bucket layout.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_requests_total", "Requests served.", "code", "200").Add(7)
	r.Counter("t_requests_total", "Requests served.", "code", "500").Add(1)
	r.Gauge("t_temperature", "Current temperature.").Set(36.6)
	r.GaugeFunc("t_shards", "Per-shard sizes.", func(emit func(v float64, kv ...string)) {
		emit(10, "shard", "1")
		emit(4, "shard", "0") // emitted out of order: exposition must sort
	})
	h := r.Histogram("t_latency", "Query latency.", "kind", "khop")
	for _, v := range []int64{3, 3, 17, 100} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	// Buckets: 3 → bucket 3 (le 3), 17 → bucket 17 (le 17), 100 → octave
	// bucket [97,103] (le 103).
	want := `# HELP t_latency Query latency.
# TYPE t_latency histogram
t_latency_bucket{kind="khop",le="3"} 2
t_latency_bucket{kind="khop",le="17"} 3
t_latency_bucket{kind="khop",le="103"} 4
t_latency_bucket{kind="khop",le="+Inf"} 4
t_latency_sum{kind="khop"} 123
t_latency_count{kind="khop"} 4
# HELP t_requests_total Requests served.
# TYPE t_requests_total counter
t_requests_total{code="200"} 7
t_requests_total{code="500"} 1
# HELP t_shards Per-shard sizes.
# TYPE t_shards gauge
t_shards{shard="0"} 4
t_shards{shard="1"} 10
# HELP t_temperature Current temperature.
# TYPE t_temperature gauge
t_temperature 36.6
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestExpositionDurationScale(t *testing.T) {
	r := NewRegistry()
	h := r.DurationHistogram("t_dur_seconds", "Latency.")
	h.Observe(2_000_000_000) // 2s in ns
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "t_dur_seconds_sum 2\n") {
		t.Fatalf("sum must be exported in seconds:\n%s", out)
	}
	// 2e9 ns lands in the bucket with upper bound 2013265919 ns ≈ 2.013s.
	if !strings.Contains(out, `le="2.0132`) {
		t.Fatalf("bucket bounds must be exported in seconds:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_esc_total", "h", "path", "a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="a\"b\\c\nd"`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

// TestRegistryConcurrent exercises concurrent family/child creation,
// recording, and exposition under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			kind := string(rune('a' + w%4))
			for i := 0; i < 500; i++ {
				r.Counter("t_c_total", "h", "kind", kind).Inc()
				r.Gauge("t_g", "h", "kind", kind).Set(float64(i))
				r.Histogram("t_h", "h", "kind", kind).Observe(int64(i))
				if i%100 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, kind := range []string{"a", "b", "c", "d"} {
		total += r.Counter("t_c_total", "h", "kind", kind).Value()
	}
	if total != 8*500 {
		t.Fatalf("counter total %d != %d", total, 8*500)
	}
}
