// Package obs is the repository's zero-dependency observability core:
// atomic counters and gauges, log-bucketed latency histograms (sharded
// per-CPU, mergeable quantiles), a registry of labeled metric families with
// Prometheus text-format exposition, and a ring-buffered phase-span tracer.
//
// Instrumentation is strictly write-only observation — nothing in this
// package feeds back into algorithm behavior — and is built to be near-free
// on hot paths: every handle (*Counter, *Gauge, *Histogram) is nil-safe, so
// an uninstrumented subsystem passes nil handles and each record site costs
// one predictable branch.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. Nil-safe.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative deltas are ignored — counters
// only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64. Nil-safe.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metricType tags a family for the exposition TYPE line.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// family is one named metric family: a type, a help string, and labeled
// children (or a collect callback for scrape-time families).
type family struct {
	name string
	help string
	typ  metricType

	mu       sync.Mutex
	children map[string]any // label-set key -> *Counter | *Gauge | *Histogram
	keys     []string       // sorted label-set keys, for deterministic output

	// collect, when non-nil, produces the family's samples at scrape time
	// (GaugeFunc families have no children).
	collect func(emit func(v float64, kv ...string))
}

// Registry holds metric families and renders them in Prometheus text
// format. A nil *Registry is the no-op registry: every factory method
// returns a nil handle, so instrumented code runs with zero bookkeeping —
// the baseline arm of the overhead experiment.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// labelKey renders alternating ("k","v",...) pairs into the canonical
// {k="v",...} selector, pairs sorted by key. Odd trailing names pair with
// "". Values are escaped per the exposition format.
func labelKey(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		p := pair{k: kv[i]}
		if i+1 < len(kv) {
			p.v = kv[i+1]
		}
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// fam returns (creating if needed) the named family, panicking on a type
// conflict — two call sites disagreeing on a family's type is a programming
// error worth failing loudly on.
func (r *Registry) fam(name, help string, typ metricType) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: map[string]any{}}
		r.fams[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: family %s registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// child returns (creating via mk) the family child for the label pairs.
func (f *family) child(kv []string, mk func() any) any {
	key := labelKey(kv)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = mk()
		f.children[key] = c
		f.keys = append(f.keys, key)
		sort.Strings(f.keys)
	}
	return c
}

// Counter returns the counter of family name with the given alternating
// label pairs, creating family and child as needed. Nil registry → nil
// (no-op) counter.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.fam(name, help, typeCounter)
	return f.child(kv, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge of family name with the given label pairs. Nil
// registry → nil gauge.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.fam(name, help, typeGauge)
	return f.child(kv, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram of family name with the given label
// pairs, exported in the recorded unit. Nil registry → nil histogram.
func (r *Registry) Histogram(name, help string, kv ...string) *Histogram {
	return r.histogram(name, help, 1, kv)
}

// DurationHistogram is Histogram for nanosecond recordings exported as
// seconds (the Prometheus duration convention): record with
// Observe(int64(elapsed)), scrape sees seconds.
func (r *Registry) DurationHistogram(name, help string, kv ...string) *Histogram {
	return r.histogram(name, help, 1e-9, kv)
}

func (r *Registry) histogram(name, help string, scale float64, kv []string) *Histogram {
	if r == nil {
		return nil
	}
	f := r.fam(name, help, typeHistogram)
	return f.child(kv, func() any { return newHistogram(scale) }).(*Histogram)
}

// GaugeFunc registers a family whose samples are produced at scrape time:
// fn is called once per exposition and emits (value, label pairs...) for
// each sample. Registering the same name again replaces the callback. Nil
// registry → no-op.
func (r *Registry) GaugeFunc(name, help string, fn func(emit func(v float64, kv ...string))) {
	if r == nil {
		return
	}
	f := r.fam(name, help, typeGauge)
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// CounterFunc is GaugeFunc for counter-typed families: the subsystem
// already keeps a cumulative total and the scrape just reads it.
func (r *Registry) CounterFunc(name, help string, fn func(emit func(v float64, kv ...string))) {
	if r == nil {
		return
	}
	f := r.fam(name, help, typeCounter)
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// WritePrometheus renders every family in Prometheus text exposition
// format, families sorted by name, children sorted by label set, histogram
// buckets emitted cumulatively (non-empty buckets plus +Inf).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	collect := f.collect
	keys := append([]string(nil), f.keys...)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if collect != nil {
		// Scrape-time family: gather, then emit in deterministic order.
		type sample struct {
			key string
			v   float64
		}
		var samples []sample
		collect(func(v float64, kv ...string) {
			samples = append(samples, sample{key: labelKey(kv), v: v})
		})
		sort.Slice(samples, func(i, j int) bool { return samples[i].key < samples[j].key })
		for _, s := range samples {
			fmt.Fprintf(b, "%s%s %s\n", f.name, s.key, formatValue(s.v))
		}
		return
	}
	for i, key := range keys {
		switch c := children[i].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, key, c.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, key, formatValue(c.Value()))
		case *Histogram:
			writeHistogram(b, f.name, key, c)
		}
	}
}

// writeHistogram emits one histogram child: cumulative _bucket lines for
// every non-empty bucket plus +Inf, then _sum and _count. le bounds are the
// buckets' inclusive upper bounds in the exported unit.
func writeHistogram(b *strings.Builder, name, key string, h *Histogram) {
	s := h.Snapshot()
	var cum uint64
	for i := range s.Counts {
		if s.Counts[i] == 0 {
			continue
		}
		cum += s.Counts[i]
		le := float64(bucketUpper(i)) * h.scale
		writeBucket(b, name, key, formatValue(le), cum)
	}
	writeBucket(b, name, key, "+Inf", s.Count)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, key, formatValue(float64(s.Sum)*h.scale))
	fmt.Fprintf(b, "%s_count%s %d\n", name, key, s.Count)
}

func writeBucket(b *strings.Builder, name, key, le string, cum uint64) {
	sep := key
	if sep == "" {
		sep = fmt.Sprintf("{le=%q}", le)
	} else {
		sep = sep[:len(sep)-1] + fmt.Sprintf(",le=%q}", le)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, sep, cum)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
