package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketIndexMonotone checks the bucket map is monotone and that every
// value lands in a bucket whose bounds contain it.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 31, 32, 33, 63, 64, 65, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d: not monotone", v, i, prev)
		}
		if i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", v, i, numBuckets)
		}
		if up := bucketUpper(i); v > up {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, i, up)
		}
		if i > 0 {
			if lo := bucketUpper(i - 1); v <= lo {
				t.Fatalf("value %d at or below bucket %d's lower fence %d", v, i, lo)
			}
		}
		prev = i
	}
	if bucketIndex(-5) != 0 {
		t.Fatalf("negative values must clamp to bucket 0")
	}
}

// TestBucketRelativeError checks the documented bound: above the exact
// region, a bucket's width is at most 2^-subBits of its lower bound.
func TestBucketRelativeError(t *testing.T) {
	for i := 2 * subCount; i < numBuckets-1; i++ {
		lo := bucketUpper(i-1) + 1
		hi := bucketUpper(i)
		if hi == math.MaxInt64 {
			break
		}
		width := float64(hi - lo + 1)
		if rel := width / float64(lo); rel > 1.0/subCount+1e-9 {
			t.Fatalf("bucket %d [%d,%d] has relative width %.4f > %v", i, lo, hi, rel, 1.0/subCount)
		}
	}
}

// quantileOracle is the sort-every-sample reference (nearest rank).
func quantileOracle(samples []int64, q float64) int64 {
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// TestQuantileVsOracle draws samples from several latency-shaped
// distributions and checks every reported quantile against the sorted
// reference within the documented bound: one bucket, i.e. ≤ 2^-subBits
// relative (plus the exact region where buckets are width 1).
func TestQuantileVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() int64{
		"uniform":     func() int64 { return rng.Int63n(1_000_000) },
		"exponential": func() int64 { return int64(rng.ExpFloat64() * 50_000) },
		"lognormal":   func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 10)) },
		"bimodal": func() int64 {
			if rng.Intn(10) == 0 {
				return 5_000_000 + rng.Int63n(1_000_000) // slow tail
			}
			return 1_000 + rng.Int63n(500)
		},
		"constant": func() int64 { return 12_345 },
		"tiny":     func() int64 { return rng.Int63n(30) }, // exact region only
	}
	quantiles := []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1.0}
	for name, draw := range dists {
		h := NewHistogram()
		samples := make([]int64, 20_000)
		for i := range samples {
			samples[i] = draw()
			h.Observe(samples[i])
		}
		snap := h.Snapshot()
		if snap.Count != uint64(len(samples)) {
			t.Fatalf("%s: count %d != %d", name, snap.Count, len(samples))
		}
		var sum int64
		for _, v := range samples {
			sum += v
		}
		if snap.Sum != sum {
			t.Fatalf("%s: sum %d != %d", name, snap.Sum, sum)
		}
		for _, q := range quantiles {
			got := snap.Quantile(q)
			want := quantileOracle(samples, q)
			// got is the upper bound of want's bucket: got >= want and
			// within one bucket width above it.
			if got < want {
				t.Errorf("%s q%.3f: histogram %d below oracle %d", name, q, got, want)
				continue
			}
			slack := int64(1) // exact region: off-by-nothing, bound still 1
			if want >= 2*subCount {
				slack = want / subCount
			}
			if got > want+slack {
				t.Errorf("%s q%.3f: histogram %d exceeds oracle %d by more than one bucket (%d)",
					name, q, got, want, slack)
			}
		}
		if m := snap.Quantile(1.0); m != snap.Max {
			t.Errorf("%s: q1.0 = %d, want exact max %d", name, m, snap.Max)
		}
	}
}

// TestHistogramMerge checks that merging two snapshots equals recording
// everything into one histogram.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 10_000; i++ {
		v := rng.Int63n(1 << 30)
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	merged := a.Snapshot().Merge(b.Snapshot())
	want := all.Snapshot()
	if merged != want {
		t.Fatalf("merged snapshot differs from single-histogram snapshot")
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this is the concurrent-recorder race test, and the final
// snapshot must account for every observation exactly.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const workers = 8
	const perWorker = 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				h.Observe(rng.Int63n(1 << 40))
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*perWorker {
		t.Fatalf("count %d != %d", snap.Count, workers*perWorker)
	}
	var bucketTotal uint64
	for _, c := range snap.Counts {
		bucketTotal += c
	}
	if bucketTotal != snap.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, snap.Count)
	}
}

// TestNilHistogram checks the no-op contract of a nil recorder.
func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(42) // must not panic
	snap := h.Snapshot()
	if snap.Count != 0 || snap.Quantile(0.99) != 0 {
		t.Fatalf("nil histogram must snapshot empty, got %+v", snap)
	}
}
