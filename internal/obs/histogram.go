package obs

import (
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// Log-bucketed histogram. Values (int64, typically nanoseconds) map to
// buckets that are exact below 2·2^subBits and geometric above: each octave
// [2^e, 2^(e+1)) splits into 2^subBits linear sub-buckets, so a bucket's
// width is at most 2^-subBits of its value. With subBits = 4 every reported
// quantile is within one bucket of the true order statistic — a bounded
// relative error of 1/16 = 6.25% — while the whole histogram is a fixed
// 976-counter array: recording is one atomic add, and a run of any length
// costs O(buckets) memory instead of retaining every sample.
//
// Recording is sharded: each Observe lands in one of a small power-of-two
// set of counter arrays picked by a per-goroutine hint, so concurrent
// recorders on different CPUs rarely contend on a cache line. Snapshot
// merges the shards; snapshots merge with each other (Merge), which is what
// makes the quantiles mergeable across phases, workers, or processes.

const (
	// subBits is the per-octave resolution: 2^subBits linear sub-buckets
	// per power of two, bounding relative bucket width to 2^-subBits.
	subBits  = 4
	subCount = 1 << subBits

	// numBuckets covers the exact region [0, 2·subCount) plus every octave
	// up to 2^64.
	numBuckets = 2*subCount + (64-1-subBits)*subCount
)

// bucketIndex maps a non-negative value to its bucket. Negative values
// clamp to bucket 0.
func bucketIndex(v int64) int {
	if v < 0 {
		return 0
	}
	u := uint64(v)
	if u < 2*subCount {
		return int(u)
	}
	e := bits.Len64(u) - 1 // u ∈ [2^e, 2^(e+1)), e ≥ subBits+1
	mant := (u >> (uint(e) - subBits)) - subCount
	return (e-subBits)*subCount + int(mant) + subCount
}

// bucketUpper returns the inclusive upper bound of bucket i — the value a
// quantile read from this bucket reports.
func bucketUpper(i int) int64 {
	if i < 2*subCount {
		return int64(i)
	}
	rest := i - subCount
	e := rest/subCount + subBits
	mant := rest % subCount
	u := uint64(subCount+mant+1)<<(uint(e)-subBits) - 1
	if u > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(u)
}

// histShard is one recorder stripe. The trailing pad keeps adjacent shards
// off the same cache line for the scalar counters.
type histShard struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
	_      [5]uint64
}

// Histogram is a concurrent log-bucketed histogram. The zero value is not
// usable; construct with NewHistogram (standalone) or Registry.Histogram /
// Registry.DurationHistogram (registered). A nil *Histogram is a no-op
// recorder, so uninstrumented hot paths pay only a nil check.
type Histogram struct {
	shards []histShard
	mask   uint64
	// scale converts recorded integer values to the exported unit at
	// exposition time (1e-9 for nanosecond recordings exported as seconds).
	scale float64
}

// NewHistogram returns an unregistered histogram (scale 1).
func NewHistogram() *Histogram { return newHistogram(1) }

func newHistogram(scale float64) *Histogram {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < 16 {
		n <<= 1
	}
	return &Histogram{shards: make([]histShard, n), mask: uint64(n - 1), scale: scale}
}

// shard picks this goroutine's stripe. Goroutine stacks are distinct
// allocations, so the address of a stack byte is a cheap, allocation-free
// hint that spreads concurrent recorders across stripes; any skew only
// costs contention, never correctness.
func (h *Histogram) shard() *histShard {
	if h.mask == 0 {
		return &h.shards[0]
	}
	var b byte
	p := uint64(uintptr(unsafe.Pointer(&b)))
	return &h.shards[(p>>8)&h.mask]
}

// Observe records one value. Nil-safe: a nil histogram is a no-op.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	s := h.shard()
	s.counts[bucketIndex(v)].Add(1)
	s.count.Add(1)
	s.sum.Add(v)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// HistSnapshot is a point-in-time merge of a histogram's shards: a dense
// bucket array plus the scalar aggregates. Snapshots from different
// histograms (or phases) merge losslessly.
type HistSnapshot struct {
	Counts [numBuckets]uint64
	Count  uint64
	Sum    int64
	Max    int64
}

// Snapshot merges the shards. Concurrent recordings may be partially
// reflected; each counter is individually exact.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			s.Counts[b] += sh.counts[b].Load()
		}
		s.Count += sh.count.Load()
		s.Sum += sh.sum.Load()
		if m := sh.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	return s
}

// Merge folds o into s, returning the combined snapshot.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	for b := range s.Counts {
		s.Counts[b] += o.Counts[b]
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	return s
}

// Quantile returns the q-quantile (nearest rank) as the upper bound of the
// bucket holding that rank, clamped to the observed maximum — within one
// bucket width (≤ 2^-subBits relative) of the exact order statistic.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i := range s.Counts {
		cum += s.Counts[i]
		if cum >= rank {
			u := bucketUpper(i)
			if u > s.Max && s.Max > 0 {
				return s.Max
			}
			return u
		}
	}
	return s.Max
}

// Mean returns the exact arithmetic mean of the recorded values.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
