package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The phase-span tracer records named start/end events with attributes into
// a fixed ring buffer: recording never allocates beyond the span itself,
// the buffer never grows, and old spans are overwritten once the ring
// wraps. Dumps render the retained window as plain JSON or as the Chrome
// trace format (chrome://tracing, Perfetto).

// Span is one finished phase: a name, a category, wall-clock bounds, and
// free-form attributes.
type Span struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Start int64             `json:"start_unix_ns"`
	Dur   int64             `json:"dur_ns"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer is a concurrent ring buffer of finished spans. A nil *Tracer is a
// no-op. Construct with NewTracer.
type Tracer struct {
	mu    sync.Mutex
	buf   []Span
	total uint64 // spans ever recorded; total - len(retained) have been dropped
}

// NewTracer returns a tracer retaining the last capacity spans (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{buf: make([]Span, 0, capacity)}
}

// Record appends a finished span, overwriting the oldest once the ring is
// full. Nil-safe.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, s)
	} else {
		t.buf[t.total%uint64(cap(t.buf))] = s
	}
	t.total++
	t.mu.Unlock()
}

// ActiveSpan is an in-flight span started by Start; End records it.
type ActiveSpan struct {
	t     *Tracer
	span  Span
	start time.Time
}

// Start opens a span; call End on the returned handle when the phase
// finishes. Nil-safe: a nil tracer returns a nil handle whose methods are
// no-ops.
func (t *Tracer) Start(name, cat string) *ActiveSpan {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &ActiveSpan{t: t, start: now, span: Span{Name: name, Cat: cat, Start: now.UnixNano()}}
}

// SetAttr attaches a key/value attribute to the span.
func (a *ActiveSpan) SetAttr(k, v string) {
	if a == nil {
		return
	}
	if a.span.Attrs == nil {
		a.span.Attrs = map[string]string{}
	}
	a.span.Attrs[k] = v
}

// End closes the span and records it.
func (a *ActiveSpan) End() {
	if a == nil {
		return
	}
	a.span.Dur = int64(time.Since(a.start))
	a.t.Record(a.span)
}

// Phase is one (name, elapsed) step of a finished multi-phase run, used by
// RecordPhases to reconstruct spans from duration-only accounting such as a
// partitioner's Result.Stats.
type Phase struct {
	Name    string
	Elapsed time.Duration
}

// RecordPhases records one span per phase, laid out back to back so that
// the last phase ends at end — the span view of a run that only kept
// per-phase durations. Every span carries attrs (shared map; do not mutate
// afterwards).
func (t *Tracer) RecordPhases(cat string, end time.Time, phases []Phase, attrs map[string]string) {
	if t == nil || len(phases) == 0 {
		return
	}
	var total time.Duration
	for _, p := range phases {
		total += p.Elapsed
	}
	start := end.Add(-total).UnixNano()
	for _, p := range phases {
		t.Record(Span{Name: p.Name, Cat: cat, Start: start, Dur: int64(p.Elapsed), Attrs: attrs})
		start += int64(p.Elapsed)
	}
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.buf))
	if len(t.buf) < cap(t.buf) {
		return append(out, t.buf...)
	}
	head := int(t.total % uint64(cap(t.buf))) // oldest retained span
	out = append(out, t.buf[head:]...)
	return append(out, t.buf[:head]...)
}

// Dropped returns how many spans the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n := uint64(len(t.buf)); t.total > n {
		return t.total - n
	}
	return 0
}

// WriteJSON dumps the retained spans as a JSON document.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		Dropped uint64 `json:"dropped"`
		Spans   []Span `json:"spans"`
	}{Dropped: t.Dropped(), Spans: t.Spans()}
	if doc.Spans == nil {
		doc.Spans = []Span{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// chromeEvent is one complete event ("ph":"X") of the Chrome trace format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace dumps the retained spans in the Chrome trace event
// format, loadable by chrome://tracing and Perfetto. Spans of the same
// category share a track.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans))
	tids := map[string]int{}
	for _, s := range spans {
		tid, ok := tids[s.Cat]
		if !ok {
			tid = len(tids) + 1
			tids[s.Cat] = tid
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			TS:   float64(s.Start) / 1e3,
			Dur:  float64(s.Dur) / 1e3,
			PID:  1,
			TID:  tid,
			Args: s.Attrs,
		})
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events}
	return json.NewEncoder(w).Encode(doc)
}
