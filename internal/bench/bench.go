// Package bench is the experiment harness shared by cmd/expbench and the
// top-level benchmarks: it times partitioner runs, computes the paper's
// metrics, estimates memory scores, and renders aligned tables whose rows
// and series match the paper's figures.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// Run is one partitioner execution with its measurements.
type Run struct {
	Partitioner string
	Graph       string
	NumParts    int
	Elapsed     time.Duration
	Quality     partition.Quality
	MemBytes    int64 // analytic or sampled peak, see MeasureMem
	Err         error
}

// MemScore returns bytes per edge (the Fig. 9 metric).
func (r Run) MemScore(numEdges int64) float64 {
	if numEdges == 0 {
		return 0
	}
	return float64(r.MemBytes) / float64(numEdges)
}

// Execute runs p on g and measures elapsed time and quality. Memory is
// sampled via the Go heap delta unless the partitioner reports an analytic
// footprint through the MemReporter interface.
func Execute(p partition.Partitioner, g *graph.Graph, numParts int) Run {
	run := Run{Partitioner: p.Name(), NumParts: numParts}
	before := heapInUse()
	start := time.Now()
	pt, err := p.Partition(g, numParts)
	run.Elapsed = time.Since(start)
	if err != nil {
		run.Err = err
		return run
	}
	if mr, ok := p.(MemReporter); ok {
		run.MemBytes = mr.MemBytes()
	} else {
		// Heap delta plus the input CSR: every offline partitioner holds
		// the whole graph, and the delta alone would credit sequential
		// baselines with near-zero footprint.
		after := heapInUse()
		run.MemBytes = int64(after) - int64(before)
		if run.MemBytes < 0 {
			run.MemBytes = 0
		}
		run.MemBytes += g.MemoryFootprint()
	}
	run.Quality = pt.Measure(g)
	return run
}

// MemReporter is implemented by partitioners that account their own peak
// memory analytically (DNE, METIS).
type MemReporter interface {
	MemBytes() int64
}

func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// Table renders aligned rows for terminal output.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v, floats with 3 digits.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fs", v.Seconds())
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print writes the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	fmt.Fprintln(w, line(t.Header))
	var rule []string
	for _, wd := range widths {
		rule = append(rule, strings.Repeat("-", wd))
	}
	fmt.Fprintln(w, line(rule))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}
