// Package bench is the experiment harness shared by cmd/expbench and the
// top-level benchmarks: it times partitioner runs, computes the paper's
// metrics, estimates memory scores, and renders aligned tables whose rows
// and series match the paper's figures.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// Run is one partitioner execution with its measurements.
type Run struct {
	Partitioner string
	Graph       string
	NumParts    int
	Elapsed     time.Duration
	Quality     partition.Quality
	// Stats is the run's full v2 statistics block (phase timings,
	// iteration counts, communication volume).
	Stats    partition.Stats
	MemBytes int64 // analytic (Stats.PeakMemBytes) or sampled heap peak
	// Checksum is partition.Checksum of the owner array — the shared
	// currency for asserting two runs produced the identical partitioning.
	Checksum uint64
	Err      error
}

// MemScore returns bytes per edge (the Fig. 9 metric).
func (r Run) MemScore(numEdges int64) float64 {
	if numEdges == 0 {
		return 0
	}
	return float64(r.MemBytes) / float64(numEdges)
}

// Execute runs p on g under the v2 API and collects elapsed time, quality
// and stats. Memory is the partitioner's analytic PeakMemBytes when it
// reports one, otherwise a Go heap delta plus the input CSR: every offline
// partitioner holds the whole graph, and the delta alone would credit
// sequential baselines with near-zero footprint.
func Execute(ctx context.Context, p partition.Partitioner, g *graph.Graph, spec partition.Spec) Run {
	run := Run{Partitioner: p.Name(), NumParts: spec.NumParts}
	before := heapInUse()
	start := time.Now()
	res, err := p.Partition(ctx, g, spec)
	run.Elapsed = time.Since(start)
	if err != nil {
		run.Err = err
		return run
	}
	run.Stats = res.Stats
	// Report pure partitioning time: v2 Partition measures quality
	// internally, and for the cheap hash methods that O(E) epilogue would
	// otherwise dominate the paper-reproduction timing tables.
	if pt := res.Stats.PartitionTime(); pt > 0 {
		run.Elapsed = pt
	}
	if res.Stats.PeakMemBytes > 0 {
		run.MemBytes = res.Stats.PeakMemBytes
	} else {
		after := heapInUse()
		run.MemBytes = int64(after) - int64(before)
		if run.MemBytes < 0 {
			run.MemBytes = 0
		}
		run.MemBytes += g.MemoryFootprint()
	}
	run.Quality = res.Quality
	run.Checksum = partition.Checksum(res.Partitioning.Owner)
	return run
}

func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// Table renders aligned rows for terminal output.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v, floats with 3 digits.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.3fs", v.Seconds())
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Print writes the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	fmt.Fprintln(w, line(t.Header))
	var rule []string
	for _, wd := range widths {
		rule = append(rule, strings.Repeat("-", wd))
	}
	fmt.Fprintln(w, line(rule))
	for _, row := range t.Rows {
		fmt.Fprintln(w, line(row))
	}
}
