package bench

import (
	"testing"

	"github.com/distributedne/dne/internal/datasets"
	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/hashpart"
	"github.com/distributedne/dne/internal/lppart"
	"github.com/distributedne/dne/internal/metispart"
	"github.com/distributedne/dne/internal/nepart"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/sheep"
	"github.com/distributedne/dne/internal/streampart"
)

// allPartitioners returns one instance of every partitioner in the repo.
func allPartitioners() []partition.Partitioner {
	return []partition.Partitioner{
		hashpart.Random{Seed: 1},
		hashpart.Grid{Seed: 1},
		hashpart.DBH{Seed: 1},
		hashpart.Hybrid{Seed: 1},
		hashpart.Oblivious{Seed: 1},
		hashpart.HybridGinger{Seed: 1},
		streampart.HDRF{Seed: 1},
		streampart.SNE{Seed: 1},
		nepart.NE{Seed: 1},
		sheep.Sheep{Seed: 1},
		lppart.Spinner{Seed: 1},
		lppart.XtraPuLP{Seed: 1},
		&metispart.METIS{Seed: 1},
		dne.New(),
	}
}

func smallGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return datasets.Skewed[0].Build(-4) // Pokec stand-in at 2^10 vertices
}

func TestEveryPartitionerProducesValidPartitioning(t *testing.T) {
	g := smallGraph(t)
	for _, p := range allPartitioners() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			pt, err := p.Partition(g, 8)
			if err != nil {
				t.Fatal(err)
			}
			if err := pt.Validate(g); err != nil {
				t.Fatal(err)
			}
			q := pt.Measure(g)
			if q.ReplicationFactor < 1.0 {
				t.Errorf("RF %.3f < 1", q.ReplicationFactor)
			}
		})
	}
}

func TestQualityOrderingMatchesPaper(t *testing.T) {
	// The paper's central quality claims (Fig. 8, Table 4) on skewed graphs:
	// NE <= DNE < hash-based; Random is the worst of the hash family.
	g := smallGraph(t)
	rf := func(p partition.Partitioner) float64 {
		pt, err := p.Partition(g, 8)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		return pt.Measure(g).ReplicationFactor
	}
	random := rf(hashpart.Random{Seed: 1})
	grid := rf(hashpart.Grid{Seed: 1})
	dneRF := rf(dne.New())
	neRF := rf(nepart.NE{Seed: 1})
	if dneRF >= grid {
		t.Errorf("DNE RF %.3f should beat Grid %.3f", dneRF, grid)
	}
	if dneRF >= random {
		t.Errorf("DNE RF %.3f should beat Random %.3f", dneRF, random)
	}
	if neRF > dneRF*1.25 {
		t.Errorf("sequential NE RF %.3f should be <= ~DNE RF %.3f", neRF, dneRF)
	}
}

func TestExecuteReportsMetrics(t *testing.T) {
	g := smallGraph(t)
	run := Execute(dne.New(), g, 4)
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	if run.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
	if run.Quality.ReplicationFactor < 1 {
		t.Error("missing quality metrics")
	}
	if run.MemBytes <= 0 {
		t.Error("DNE should report an analytic memory footprint")
	}
}
