package bench

import (
	"context"
	"testing"

	"github.com/distributedne/dne/internal/datasets"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

func newMethod(t testing.TB, name string, parts int) (partition.Partitioner, partition.Spec) {
	t.Helper()
	pr, spec, err := methods.New(name, partition.NewSpec(parts, 1))
	if err != nil {
		t.Fatal(err)
	}
	return pr, spec
}

func smallGraph(t testing.TB) *graph.Graph {
	t.Helper()
	return datasets.Skewed[0].Build(-4) // Pokec stand-in at 2^10 vertices
}

func TestEveryPartitionerProducesValidPartitioning(t *testing.T) {
	g := smallGraph(t)
	for _, name := range methods.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pr, spec := newMethod(t, name, 8)
			run := Execute(context.Background(), pr, g, spec)
			if run.Err != nil {
				t.Fatal(run.Err)
			}
			if run.Quality.ReplicationFactor < 1.0 {
				t.Errorf("RF %.3f < 1", run.Quality.ReplicationFactor)
			}
		})
	}
}

func TestQualityOrderingMatchesPaper(t *testing.T) {
	// The paper's central quality claims (Fig. 8, Table 4) on skewed graphs:
	// NE <= DNE < hash-based; Random is the worst of the hash family.
	g := smallGraph(t)
	rf := func(name string) float64 {
		pr, spec := newMethod(t, name, 8)
		run := Execute(context.Background(), pr, g, spec)
		if run.Err != nil {
			t.Fatalf("%s: %v", name, run.Err)
		}
		return run.Quality.ReplicationFactor
	}
	random := rf("random")
	grid := rf("grid")
	dneRF := rf("dne")
	neRF := rf("ne")
	if dneRF >= grid {
		t.Errorf("DNE RF %.3f should beat Grid %.3f", dneRF, grid)
	}
	if dneRF >= random {
		t.Errorf("DNE RF %.3f should beat Random %.3f", dneRF, random)
	}
	if neRF > dneRF*1.25 {
		t.Errorf("sequential NE RF %.3f should be <= ~DNE RF %.3f", neRF, dneRF)
	}
}

func TestExecuteReportsMetrics(t *testing.T) {
	g := smallGraph(t)
	pr, spec := newMethod(t, "dne", 4)
	run := Execute(context.Background(), pr, g, spec)
	if run.Err != nil {
		t.Fatal(run.Err)
	}
	if run.Elapsed <= 0 {
		t.Error("no elapsed time recorded")
	}
	if run.Quality.ReplicationFactor < 1 {
		t.Error("missing quality metrics")
	}
	if run.MemBytes <= 0 {
		t.Error("DNE should report an analytic memory footprint")
	}
	if run.Stats.Iterations <= 0 || run.Stats.CommBytes <= 0 {
		t.Errorf("DNE stats not folded into Run: %+v", run.Stats)
	}
	if len(run.Stats.Phases) == 0 {
		t.Error("no phase timings recorded")
	}
}

func TestExecuteHonorsCancelledContext(t *testing.T) {
	g := smallGraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pr, spec := newMethod(t, "hdrf", 4)
	run := Execute(ctx, pr, g, spec)
	if run.Err == nil {
		t.Fatal("cancelled context did not abort the run")
	}
}
