package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/obs"
	"github.com/distributedne/dne/internal/store"
)

// ServingConfig describes one online workload run against a store: a mix of
// neighbor lookups and k-hop traversals over uniformly random vertices,
// issued by Workers concurrent clients at a target QPS.
type ServingConfig struct {
	// Queries is the total number of queries to issue.
	Queries int
	// QPS is the target aggregate query rate; 0 runs closed-loop (each
	// worker issues its next query as soon as the previous one returns).
	QPS float64
	// Workers is the number of concurrent clients (default 4).
	Workers int
	// KHopRatio in [0,1] is the fraction of queries that are KHop
	// traversals; the rest are Neighbors lookups.
	KHopRatio float64
	// KHopK is the traversal depth of KHop queries (default 2).
	KHopK int
	// Seed drives vertex and query-kind selection; equal seeds issue the
	// identical workload, so two stores can be compared query-for-query.
	Seed int64
}

func (c ServingConfig) withDefaults() ServingConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.KHopK <= 0 {
		c.KHopK = 2
	}
	return c
}

// ServingReport is the measured outcome of a serving workload: throughput,
// latency percentiles, and the cross-shard traffic the store's partitioning
// induced — the online counterpart of the offline replication factor.
//
// Latency quantiles are read from a log-bucketed histogram (internal/obs)
// rather than a sorted sample array: recording is allocation-free and
// concurrent, at the cost of a bounded relative quantile error of at most
// one bucket width (≤ 6.25%); LatencyMax is exact.
type ServingReport struct {
	Queries    int64
	Elapsed    time.Duration
	Throughput float64 // queries per second

	LatencyP50 time.Duration
	LatencyP95 time.Duration
	LatencyP99 time.Duration
	LatencyMax time.Duration

	// CrossShardHops is the total replica fetches beyond the first; see
	// store.Metrics. HopsPerQuery is the per-query average.
	CrossShardHops int64
	HopsPerQuery   float64
	ShardTasks     int64
	// TouchImbalance is max/mean per-shard touches (1.0 = perfectly even).
	TouchImbalance float64
}

// RunServing drives cfg's workload against st and reports the measured
// serving cost. The store's metrics are reset at the start, so the report
// reflects exactly this run.
func RunServing(ctx context.Context, st *store.Store, cfg ServingConfig) (ServingReport, error) {
	cfg = cfg.withDefaults()
	if st.NumVertices() == 0 {
		return ServingReport{}, fmt.Errorf("bench: serving over an empty store")
	}
	if cfg.Queries <= 0 {
		return ServingReport{}, fmt.Errorf("bench: non-positive query count %d", cfg.Queries)
	}

	// Pre-generate the workload so equal seeds issue identical queries
	// regardless of worker interleaving.
	type query struct {
		v    graph.Vertex
		khop bool
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	queries := make([]query, cfg.Queries)
	for i := range queries {
		queries[i] = query{
			v:    graph.Vertex(rng.Intn(int(st.NumVertices()))),
			khop: rng.Float64() < cfg.KHopRatio,
		}
	}

	st.ResetMetrics()
	hist := obs.NewHistogram()
	var next atomic.Int64
	var firstErr atomic.Value
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.Queries) || firstErr.Load() != nil {
					return
				}
				if cfg.QPS > 0 {
					// Open-loop pacing: query i is due at start + i/QPS.
					due := start.Add(time.Duration(float64(i) / cfg.QPS * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							firstErr.CompareAndSwap(nil, ctx.Err())
							return
						}
					}
				}
				if err := ctx.Err(); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				q := queries[i]
				qStart := time.Now()
				var err error
				if q.khop {
					_, err = st.KHop(ctx, q.v, cfg.KHopK)
				} else {
					_, err = st.Neighbors(q.v)
				}
				hist.Observe(int64(time.Since(qStart)))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return ServingReport{}, err
	}

	m := st.Metrics()
	rep := ServingReport{
		Queries:        int64(cfg.Queries),
		Elapsed:        elapsed,
		CrossShardHops: m.CrossShardHops,
		HopsPerQuery:   m.HopsPerQuery(),
		ShardTasks:     m.ShardTasks,
	}
	if elapsed > 0 {
		rep.Throughput = float64(cfg.Queries) / elapsed.Seconds()
	}
	snap := hist.Snapshot()
	rep.LatencyP50 = time.Duration(snap.Quantile(0.50))
	rep.LatencyP95 = time.Duration(snap.Quantile(0.95))
	rep.LatencyP99 = time.Duration(snap.Quantile(0.99))
	rep.LatencyMax = time.Duration(snap.Max)
	var sum, max int64
	for _, c := range m.PerShardTouches {
		sum += c
		if c > max {
			max = c
		}
	}
	if sum > 0 {
		rep.TouchImbalance = float64(max) / (float64(sum) / float64(len(m.PerShardTouches)))
	}
	return rep, nil
}
