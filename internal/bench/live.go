package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/live"
	"github.com/distributedne/dne/internal/obs"
)

// LiveConfig describes one mixed ingest+query workload against a live
// graph: an event stream is ingested in batches, then an identical query
// mix is measured in three phases — steady state, during a compaction, and
// during a bounded rebalance — so the tail-latency cost of background
// maintenance is observable directly.
type LiveConfig struct {
	// IngestBatch is the events per Apply call (default 4096). One epoch is
	// published per batch, so this is also the visibility granularity.
	IngestBatch int
	// Queries is the steady-phase query count (default 2000).
	Queries int
	// Workers is the number of concurrent query clients (default 4).
	Workers int
	// KHopRatio in [0,1] is the fraction of queries that are KHop
	// traversals; the rest are Neighbors lookups.
	KHopRatio float64
	// KHopK is the traversal depth of KHop queries (default 2).
	KHopK int
	// Seed drives vertex and query-kind selection.
	Seed int64
	// OverlayFraction is the tail fraction of the stream held back and
	// applied right before the compaction phase, so the compactor has a
	// real overlay to fold (default 0.25).
	OverlayFraction float64
	// RebalanceBudget is the migration budget of the rebalance phase
	// (default 10000 edges).
	RebalanceBudget int
	// SkewDeleteFraction empties partitions 0..P/2-1 by this fraction right
	// before the rebalance phase (a correlated departure wave), so the
	// remaining partitions exceed the balance cap and the rebalancer has
	// real migrations to perform (default 0.5; negative disables).
	SkewDeleteFraction float64
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.IngestBatch <= 0 {
		c.IngestBatch = 4096
	}
	if c.Queries <= 0 {
		c.Queries = 2000
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.KHopK <= 0 {
		c.KHopK = 2
	}
	if c.OverlayFraction <= 0 || c.OverlayFraction >= 1 {
		c.OverlayFraction = 0.25
	}
	if c.RebalanceBudget <= 0 {
		c.RebalanceBudget = 10000
	}
	if c.SkewDeleteFraction == 0 {
		c.SkewDeleteFraction = 0.5
	}
	return c
}

// LivePhase is the measured query latency of one workload phase. Quantiles
// come from a shared log-bucketed histogram (internal/obs): workers record
// concurrently with no per-worker sample slices, and each quantile carries
// a bounded relative error of at most one bucket width (≤ 6.25%); Max is
// exact.
type LivePhase struct {
	Phase      string        `json:"phase"`
	Queries    int64         `json:"queries"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"qps"`
	LatencyP50 time.Duration `json:"p50_ns"`
	LatencyP95 time.Duration `json:"p95_ns"`
	LatencyP99 time.Duration `json:"p99_ns"`
	LatencyMax time.Duration `json:"max_ns"`
}

// LiveReport is the outcome of one live workload run.
type LiveReport struct {
	Events        int           `json:"events"`
	Applied       int           `json:"applied"`
	IngestElapsed time.Duration `json:"ingest_elapsed_ns"`
	EventsPerSec  float64       `json:"events_per_sec"`
	// SkewDeletes is the size of the departure wave injected before the
	// rebalance phase (see LiveConfig.SkewDeleteFraction).
	SkewDeletes int `json:"skew_deletes"`

	Steady           LivePhase `json:"steady"`
	DuringCompaction LivePhase `json:"during_compaction"`
	DuringRebalance  LivePhase `json:"during_rebalance"`

	CompactElapsed   time.Duration `json:"compact_elapsed_ns"`
	RebalanceElapsed time.Duration `json:"rebalance_elapsed_ns"`

	Moved                int64   `json:"moved"`
	MigratedBytes        int64   `json:"migrated_bytes"`
	MigrationBytesPerSec float64 `json:"migration_bytes_per_sec"`

	Stats live.Stats `json:"stats"`
}

// RunLive ingests events into lv and measures cfg's query mix in three
// phases. Queries pin the published epoch per call and never take the
// writer lock, so the compaction and rebalance phases measure exactly the
// epoch-pinning promise: maintenance may only cost cache misses, never
// blocking.
func RunLive(ctx context.Context, lv *live.Live, events []dynpart.Event, cfg LiveConfig) (*LiveReport, error) {
	cfg = cfg.withDefaults()
	if len(events) == 0 {
		return nil, fmt.Errorf("bench: empty live event stream")
	}
	rep := &LiveReport{Events: len(events)}

	// Ingest the head of the stream; the tail becomes the compaction
	// phase's overlay debt.
	head := int(float64(len(events)) * (1 - cfg.OverlayFraction))
	ingestStart := time.Now()
	n, err := applyBatches(lv, events[:head], cfg.IngestBatch)
	if err != nil {
		return nil, err
	}
	rep.Applied += n
	rep.IngestElapsed = time.Since(ingestStart)
	if s := rep.IngestElapsed.Seconds(); s > 0 {
		rep.EventsPerSec = float64(head) / s
	}

	// Steady state: no maintenance in flight.
	rep.Steady, err = runLivePhase(ctx, lv, "steady", cfg, nil)
	if err != nil {
		return nil, err
	}

	// Apply the held-back tail so the overlay is non-trivial, then measure
	// queries racing the compactor.
	if n, err = applyBatches(lv, events[head:], cfg.IngestBatch); err != nil {
		return nil, err
	}
	rep.Applied += n
	var maintErr error
	rep.DuringCompaction, err = runLivePhase(ctx, lv, "during-compaction", cfg, func() {
		start := time.Now()
		maintErr = lv.Compact()
		rep.CompactElapsed = time.Since(start)
	})
	if err != nil {
		return nil, err
	}
	if maintErr != nil {
		return nil, fmt.Errorf("bench: compaction under load: %w", maintErr)
	}

	// A correlated departure wave (deterministic: the low prefix of each
	// low partition's sorted live edge list) unbalances the graph so the
	// rebalance phase performs real migrations — pure greedy insert streams
	// self-balance and would give the rebalancer nothing to do.
	if f := cfg.SkewDeleteFraction; f > 0 {
		ep := lv.Epoch()
		var wave []dynpart.Event
		for s := 0; s < ep.NumShards()/2; s++ {
			packed := ep.ShardEdgesPacked(s)
			for _, k := range packed[:int(f*float64(len(packed)))] {
				wave = append(wave, dynpart.Event{Op: dynpart.Remove, Edge: graph.UnpackEdge(k)})
			}
		}
		rep.SkewDeletes = len(wave)
		if _, err := applyBatches(lv, wave, cfg.IngestBatch); err != nil {
			return nil, err
		}
	}

	// Queries racing the rebalancer.
	statsBefore := lv.Stats()
	rep.DuringRebalance, err = runLivePhase(ctx, lv, "during-rebalance", cfg, func() {
		start := time.Now()
		_, maintErr = lv.Rebalance(cfg.RebalanceBudget)
		rep.RebalanceElapsed = time.Since(start)
	})
	if err != nil {
		return nil, err
	}
	if maintErr != nil {
		return nil, fmt.Errorf("bench: rebalance under load: %w", maintErr)
	}

	rep.Stats = lv.Stats()
	rep.Moved = rep.Stats.Moved - statsBefore.Moved
	rep.MigratedBytes = rep.Stats.MigratedBytes - statsBefore.MigratedBytes
	if s := rep.RebalanceElapsed.Seconds(); s > 0 {
		rep.MigrationBytesPerSec = float64(rep.MigratedBytes) / s
	}
	return rep, nil
}

// applyBatches feeds events to lv in batches and returns how many changed
// state.
func applyBatches(lv *live.Live, events []dynpart.Event, batch int) (int, error) {
	applied := 0
	for off := 0; off < len(events); off += batch {
		end := min(off+batch, len(events))
		n, err := lv.Apply(events[off:end])
		if err != nil {
			return applied, err
		}
		applied += n
	}
	return applied, nil
}

// runLivePhase measures one phase of the query mix. With maintenance nil it
// issues exactly cfg.Queries queries (closed loop); otherwise the workers
// run while maintenance executes on the calling goroutine, and the phase
// reports every query that completed inside that window (at least
// cfg.Queries/4, so a fast maintenance pass still yields a sample).
func runLivePhase(ctx context.Context, lv *live.Live, name string, cfg LiveConfig, maintenance func()) (LivePhase, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	numV := lv.Epoch().NumVertices()
	if numV == 0 {
		return LivePhase{}, fmt.Errorf("bench: live graph is empty")
	}
	type query struct {
		v    graph.Vertex
		khop bool
	}
	// Pre-generate a fixed pool so every phase issues the same mix.
	pool := make([]query, cfg.Queries)
	for i := range pool {
		pool[i] = query{
			v:    graph.Vertex(rng.Intn(int(numV))),
			khop: rng.Float64() < cfg.KHopRatio,
		}
	}

	var next atomic.Int64
	var stop atomic.Bool
	var firstErr atomic.Value
	minQueries := int64(cfg.Queries)
	if maintenance != nil {
		minQueries = int64(cfg.Queries) / 4
	}
	hist := obs.NewHistogram()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				// Duration-bound phases cycle the pool until stopped;
				// count-bound phases end with it.
				if maintenance == nil && i >= int64(cfg.Queries) {
					return
				}
				if (stop.Load() && i >= minQueries) || firstErr.Load() != nil {
					return
				}
				if err := ctx.Err(); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				q := pool[i%int64(cfg.Queries)]
				ep := lv.Epoch()
				qStart := time.Now()
				var err error
				if q.khop {
					_, err = ep.KHop(ctx, q.v, cfg.KHopK)
				} else {
					_, err = ep.Neighbors(q.v)
				}
				hist.Observe(int64(time.Since(qStart)))
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}()
	}
	if maintenance != nil {
		maintenance()
		stop.Store(true)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return LivePhase{}, err
	}
	snap := hist.Snapshot()
	ph := LivePhase{Phase: name, Queries: int64(snap.Count), Elapsed: elapsed}
	if snap.Count == 0 {
		return ph, nil
	}
	if s := elapsed.Seconds(); s > 0 {
		ph.Throughput = float64(snap.Count) / s
	}
	ph.LatencyP50 = time.Duration(snap.Quantile(0.50))
	ph.LatencyP95 = time.Duration(snap.Quantile(0.95))
	ph.LatencyP99 = time.Duration(snap.Quantile(0.99))
	ph.LatencyMax = time.Duration(snap.Max)
	return ph, nil
}
