package bench

import (
	"context"
	"math/rand"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/store"
)

func servingStore(t *testing.T, g *graph.Graph, parts int, seed int64) *store.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := partition.New(parts, g.NumEdges())
	for i := range p.Owner {
		p.Owner[i] = int32(rng.Intn(parts))
	}
	st, err := store.BuildPartitioning(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestRunServingClosedLoop(t *testing.T) {
	g := gen.RMAT(8, 8, 3)
	st := servingStore(t, g, 4, 3)
	rep, err := RunServing(context.Background(), st, ServingConfig{
		Queries:   200,
		Workers:   4,
		KHopRatio: 0.3,
		KHopK:     2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 200 {
		t.Errorf("queries = %d", rep.Queries)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %v", rep.Throughput)
	}
	if rep.LatencyP50 > rep.LatencyP95 || rep.LatencyP95 > rep.LatencyP99 || rep.LatencyP99 > rep.LatencyMax {
		t.Errorf("percentiles not monotone: %v %v %v %v",
			rep.LatencyP50, rep.LatencyP95, rep.LatencyP99, rep.LatencyMax)
	}
	if rep.CrossShardHops <= 0 {
		t.Error("random 4-way partitioning served with zero cross-shard hops")
	}
	if rep.TouchImbalance < 1 {
		t.Errorf("touch imbalance %v < 1", rep.TouchImbalance)
	}
	if got := st.Metrics().Queries(); got != 200 {
		t.Errorf("store recorded %d queries", got)
	}
}

func TestRunServingPaced(t *testing.T) {
	g := gen.ER(200, 800, 5)
	st := servingStore(t, g, 3, 5)
	rep, err := RunServing(context.Background(), st, ServingConfig{
		Queries: 50,
		QPS:     5000,
		Workers: 2,
		Seed:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 50 {
		t.Errorf("queries = %d", rep.Queries)
	}
	// Open-loop pacing stretches the run to roughly Queries/QPS.
	if min := 50.0 / 5000; rep.Elapsed.Seconds() < min/2 {
		t.Errorf("paced run finished in %v, expected ≳ %vs", rep.Elapsed, min)
	}
}

func TestRunServingSameSeedSameHops(t *testing.T) {
	g := gen.RMAT(8, 6, 7)
	st := servingStore(t, g, 5, 7)
	cfg := ServingConfig{Queries: 100, Workers: 3, KHopRatio: 0.5, KHopK: 2, Seed: 11}
	a, err := RunServing(context.Background(), st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunServing(context.Background(), st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CrossShardHops != b.CrossShardHops {
		t.Errorf("same workload, different hops: %d vs %d", a.CrossShardHops, b.CrossShardHops)
	}
}

func TestRunServingErrors(t *testing.T) {
	g := gen.ER(100, 300, 1)
	st := servingStore(t, g, 2, 1)
	if _, err := RunServing(context.Background(), st, ServingConfig{Queries: 0}); err == nil {
		t.Error("zero queries accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunServing(ctx, st, ServingConfig{Queries: 100}); err == nil {
		t.Error("cancelled context not honored")
	}
}
