package bench

import (
	"context"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

// ExecuteSource runs the named registry method on an edge source —
// stream-capable methods consume it directly, the rest are transparently
// materialized by the registry — and collects the same Run shape as
// Execute. Memory is always the analytic PeakMemBytes: the stream path
// accounts its dense state and buffers, and the materializing fallback is
// floored at the resident graph, so the two input paths are comparable on
// one scale.
func ExecuteSource(ctx context.Context, name string, src graph.Source, spec partition.Spec) Run {
	return executeSource(ctx, name, src, spec, false)
}

// ExecuteSourcePiped is ExecuteSource through the pipelined stream runner
// (methods.PartitionSourcePiped): identical Run shape, identical checksum
// and quality, overlapped stages.
func ExecuteSourcePiped(ctx context.Context, name string, src graph.Source, spec partition.Spec) Run {
	return executeSource(ctx, name, src, spec, true)
}

func executeSource(ctx context.Context, name string, src graph.Source, spec partition.Spec, piped bool) Run {
	run := Run{Partitioner: name, Graph: src.Info().Name, NumParts: spec.NumParts}
	partitionSource := methods.PartitionSource
	if piped {
		partitionSource = methods.PartitionSourcePiped
	}
	res, err := partitionSource(ctx, name, src, spec)
	if err != nil {
		run.Err = err
		return run
	}
	run.Stats = res.Stats
	run.Elapsed = res.Stats.Wall
	if pt := res.Stats.PartitionTime(); pt > 0 {
		run.Elapsed = pt
	}
	run.MemBytes = res.Stats.PeakMemBytes
	run.Quality = res.Quality
	run.Checksum = partition.Checksum(res.Partitioning.Owner)
	return run
}
