package bench

import (
	"context"
	"math/rand"
	"testing"

	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/live"
)

func TestRunLivePhases(t *testing.T) {
	g := gen.RMAT(10, 8, 3)
	edges := g.Edges()
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	events := make([]dynpart.Event, len(edges))
	for i, e := range edges {
		events[i] = dynpart.Event{Op: dynpart.Add, Edge: e}
	}

	lv, err := live.Open(t.TempDir(), live.Config{NumParts: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer lv.Close()

	rep, err := RunLive(context.Background(), lv, events, LiveConfig{
		Queries: 400, Workers: 4, KHopRatio: 0.3, KHopK: 2, Seed: 11,
		RebalanceBudget: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied == 0 || rep.Applied > len(events) {
		t.Fatalf("applied %d of %d events", rep.Applied, len(events))
	}
	if rep.SkewDeletes == 0 {
		t.Fatal("no departure wave injected before the rebalance phase")
	}
	if want := int64(rep.Applied - rep.SkewDeletes); rep.Stats.NumEdges != want {
		t.Fatalf("stats hold %d edges, want %d (applied %d minus %d wave deletes)",
			rep.Stats.NumEdges, want, rep.Applied, rep.SkewDeletes)
	}
	if rep.Stats.Moved == 0 || rep.MigratedBytes == 0 {
		t.Fatalf("rebalance phase migrated nothing: moved %d, bytes %d", rep.Stats.Moved, rep.MigratedBytes)
	}
	for _, ph := range []LivePhase{rep.Steady, rep.DuringCompaction, rep.DuringRebalance} {
		if ph.Queries == 0 {
			t.Fatalf("phase %q measured no queries", ph.Phase)
		}
		if ph.LatencyP99 < ph.LatencyP50 {
			t.Fatalf("phase %q: p99 %v < p50 %v", ph.Phase, ph.LatencyP99, ph.LatencyP50)
		}
	}
	if rep.Steady.Queries != 400 {
		t.Fatalf("steady phase ran %d queries, want 400", rep.Steady.Queries)
	}
	if rep.Stats.Compactions == 0 {
		t.Fatal("compaction phase did not compact")
	}
	if rep.CompactElapsed <= 0 {
		t.Fatal("no compaction wall time recorded")
	}
}
