// Package dnebench holds one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design decisions called out in
// DESIGN.md §4. Benchmarks run the same experiment designs as cmd/expbench
// at reduced scale; `go test -bench . -benchmem` regenerates every series.
package dnebench

import (
	"fmt"
	"io"
	"testing"

	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/experiments"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/hyperpart"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/streampart"
)

func benchOpts(b *testing.B) experiments.Options {
	b.Helper()
	return experiments.Options{Shift: -2, Seed: 1, PRIters: 5, Quick: true, Out: io.Discard}
}

func runExperiment(b *testing.B, fn func(experiments.Options) error) {
	b.Helper()
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		if err := fn(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6LambdaSweep regenerates Fig. 6 (iterations & RF vs λ).
func BenchmarkFig6LambdaSweep(b *testing.B) { runExperiment(b, experiments.Fig6) }

// BenchmarkTable1Bounds regenerates Table 1 (theoretical upper bounds).
func BenchmarkTable1Bounds(b *testing.B) { runExperiment(b, experiments.Table1) }

// BenchmarkFig8Quality regenerates Fig. 8(a)-(g) (RF of skewed graphs).
func BenchmarkFig8Quality(b *testing.B) { runExperiment(b, experiments.Fig8) }

// BenchmarkFig8RMAT regenerates Fig. 8(h)-(j) (RF of RMAT vs edge factor).
func BenchmarkFig8RMAT(b *testing.B) { runExperiment(b, experiments.Fig8RMAT) }

// BenchmarkFig9Memory regenerates Fig. 9 (memory scores).
func BenchmarkFig9Memory(b *testing.B) { runExperiment(b, experiments.Fig9) }

// BenchmarkFig10Elapsed regenerates Fig. 10(a)-(g) (time vs machines).
func BenchmarkFig10Elapsed(b *testing.B) { runExperiment(b, experiments.Fig10) }

// BenchmarkFig10EdgeFactor regenerates Fig. 10(h) (time vs edge factor).
func BenchmarkFig10EdgeFactor(b *testing.B) { runExperiment(b, experiments.Fig10EF) }

// BenchmarkFig10Scale regenerates Fig. 10(i) (time vs scale).
func BenchmarkFig10Scale(b *testing.B) { runExperiment(b, experiments.Fig10Scale) }

// BenchmarkFig10jWeakScaling regenerates Fig. 10(j) (§7.4 weak scaling
// toward the trillion-edge configuration).
func BenchmarkFig10jWeakScaling(b *testing.B) { runExperiment(b, experiments.Fig10J) }

// BenchmarkTable4Sequential regenerates Table 4 (HDRF/NE/SNE vs D.NE).
func BenchmarkTable4Sequential(b *testing.B) { runExperiment(b, experiments.Table4) }

// BenchmarkTable5Apps regenerates Table 5 (SSSP/WCC/PageRank over
// partitionings).
func BenchmarkTable5Apps(b *testing.B) { runExperiment(b, experiments.Table5) }

// BenchmarkTable6Roads regenerates Table 6 (road networks).
func BenchmarkTable6Roads(b *testing.B) { runExperiment(b, experiments.Table6) }

// BenchmarkDNEPartition1M is the tracked perf benchmark behind
// BENCH_dne.json: Distributed NE on the seeded ~1M-edge RMAT (scale 16,
// edge factor 16) with 16 machines. The graph build is excluded; the
// measured region is exactly the partitioning. RF is reported so quality
// regressions show up next to wall-time ones.
func BenchmarkDNEPartition1M(b *testing.B) {
	g := gen.RMAT(16, 16, 42)
	cfg := dne.DefaultConfig()
	cfg.Seed = 42
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dne.Partition(g, 16, cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		b.ReportMetric(res.Partitioning.Measure(g).ReplicationFactor, "RF")
		b.StartTimer()
	}
}

// --- Ablations (DESIGN.md §4) ---

func ablationGraph() *graph.Graph { return gen.RMAT(13, 16, 9) }

// BenchmarkAblationLambda compares single-expansion (Theorem-1 mode) against
// the paper's λ=0.1 multi-expansion on the same graph: the iteration-count
// gap is the entire point of §5.
func BenchmarkAblationLambda(b *testing.B) {
	g := ablationGraph()
	for _, mode := range []struct {
		name   string
		single bool
	}{{"single", true}, {"lambda0.1", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := dne.DefaultConfig()
			cfg.SingleExpansion = mode.single
			if mode.single {
				// Single expansion on a 2M-edge graph takes ~|E|/P steps;
				// use a smaller instance to keep the bench honest but fast.
				cfg.MaxIterations = 1 << 22
			}
			gg := g
			if mode.single {
				gg = gen.RMAT(10, 8, 9)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dne.Partition(gg, 8, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Iterations), "iterations")
			}
		})
	}
}

// BenchmarkAblationPartitionCount shows how DNE's runtime and communication
// scale with the machine count on a fixed graph.
func BenchmarkAblationPartitionCount(b *testing.B) {
	g := ablationGraph()
	for _, p := range []int{4, 16, 64} {
		b.Run(benchName("P", p), func(b *testing.B) {
			cfg := dne.DefaultConfig()
			for i := 0; i < b.N; i++ {
				res, err := dne.Partition(g, p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.CommBytes)/(1<<20), "comm-MB")
			}
		})
	}
}

// BenchmarkAblationAlpha measures the quality/balance trade as the imbalance
// factor α varies (Eq. 2's constraint tightness).
func BenchmarkAblationAlpha(b *testing.B) {
	g := ablationGraph()
	for _, alpha := range []float64{1.01, 1.1, 1.5} {
		b.Run(benchName("alpha", int(alpha*100)), func(b *testing.B) {
			cfg := dne.DefaultConfig()
			cfg.Alpha = alpha
			for i := 0; i < b.N; i++ {
				res, err := dne.Partition(g, 16, cfg)
				if err != nil {
					b.Fatal(err)
				}
				q := res.Partitioning.Measure(g)
				b.ReportMetric(q.ReplicationFactor, "RF")
				b.ReportMetric(q.EdgeBalance, "EB")
			}
		})
	}
}

// BenchmarkAblationConflictRate enables the paper-faithful intra-machine
// parallel allocation (Alg. 3 "do in parallel") and reports how many edge
// claims are lost to the CAS as the machine count grows (DESIGN.md §4.1).
func BenchmarkAblationConflictRate(b *testing.B) {
	g := ablationGraph()
	for _, p := range []int{4, 16, 64} {
		b.Run(benchName("P", p), func(b *testing.B) {
			cfg := dne.DefaultConfig()
			cfg.ParallelAllocation = true
			for i := 0; i < b.N; i++ {
				res, err := dne.Partition(g, p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.CASConflicts), "conflicts")
			}
		})
	}
}

// BenchmarkAblationMulticastFanout compares the O(√P) grid multicast against
// broadcasting replica updates to all machines (DESIGN.md §4.2): identical
// partitions, very different traffic.
func BenchmarkAblationMulticastFanout(b *testing.B) {
	g := ablationGraph()
	for _, mode := range []struct {
		name      string
		broadcast bool
	}{{"grid", false}, {"broadcast", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := dne.DefaultConfig()
			cfg.BroadcastReplicas = mode.broadcast
			for i := 0; i < b.N; i++ {
				res, err := dne.Partition(g, 16, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.CommBytes)/(1<<20), "comm-MB")
				b.ReportMetric(float64(res.CommMessages), "msgs")
			}
		})
	}
}

// BenchmarkAblationDrestStaleness reports the fraction of selection
// deliveries that allocate nothing — the price of refreshing boundary Drest
// scores only on re-entry (DESIGN.md §4.4) — across λ (staleness grows with
// the batch size).
func BenchmarkAblationDrestStaleness(b *testing.B) {
	g := ablationGraph()
	for _, lambda := range []float64{0.01, 0.1, 1.0} {
		b.Run(fmt.Sprintf("lambda=%g", lambda), func(b *testing.B) {
			cfg := dne.DefaultConfig()
			cfg.Lambda = lambda
			for i := 0; i < b.N; i++ {
				res, err := dne.Partition(g, 16, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.WastedSelections)/float64(res.TotalSelections), "waste-rate")
			}
		})
	}
}

// --- Extensions (paper §8 future work; internal/dynpart, internal/hyperpart) ---

// BenchmarkDynamicChurn measures incremental-maintenance throughput
// (events/sec) and the RF drift of a DNE-seeded dynamic partitioning under a
// 20%-deletion churn stream.
func BenchmarkDynamicChurn(b *testing.B) {
	g := gen.RMAT(13, 16, 21)
	res, err := dne.Partition(g, 16, dne.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	events := dynpart.Churn(g, 100_000, 0.2, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d, err := dynpart.FromStatic(g, res.Partitioning, dynpart.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		d.Apply(events)
		b.StopTimer()
		b.ReportMetric(float64(len(events))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(d.ReplicationFactor(), "RF")
		b.StartTimer()
	}
}

// BenchmarkHypergraphPartitioners compares the hypergraph partitioners' RF
// on a skewed hypergraph (paper §8's hypergraph direction).
func BenchmarkHypergraphPartitioners(b *testing.B) {
	h := hyperpart.RandomHypergraph(1<<13, 16_000, 5, 3)
	for _, pr := range []hyperpart.Partitioner{
		hyperpart.Random{Seed: 1}, hyperpart.Greedy{Seed: 1}, hyperpart.NE{Seed: 1},
	} {
		b.Run(pr.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := pr.Partition(h, 16)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.Measure(h).ReplicationFactor, "RF")
			}
		})
	}
}

// BenchmarkFennelVsHDRF compares the two streaming edge partitioners' RF and
// speed on the same skewed graph.
func BenchmarkFennelVsHDRF(b *testing.B) {
	g := gen.RMAT(13, 16, 5)
	for _, pr := range []interface {
		Name() string
		Partition(*graph.Graph, int) (*partition.Partitioning, error)
	}{
		streampart.Fennel{Seed: 1}, streampart.HDRF{Seed: 1},
	} {
		b.Run(pr.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pt, err := pr.Partition(g, 16)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(pt.Measure(g).ReplicationFactor, "RF")
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return fmt.Sprintf("%s=%d", prefix, v)
}
