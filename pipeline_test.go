package dnebench

import (
	"context"
	"testing"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

func writeCompressedShards(t *testing.T, g *graph.Graph, count int) string {
	t.Helper()
	dir := t.TempDir()
	if err := graph.WriteCanonicalShardsCompressed(dir, g, count); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestPipelineMatchesSequential is the differential check of the pipelined
// engine: for every Streams-capable method, partitioning compressed (ESZ1)
// shard stripes through the overlapped decode/shuffle/assign path must
// equal the sequential stream path bit for bit — same owner checksum, same
// quality numbers — which in turn equals the in-memory run
// (TestSourcePathMatchesInMemory). Pipelining and compression are pure
// transport: they may only change when bytes move, never which partition an
// edge lands in.
func TestPipelineMatchesSequential(t *testing.T) {
	g := gen.RMAT(12, 8, 7)
	dir := writeCompressedShards(t, g, 4)
	src, err := graph.DirSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Info().NumEdges != g.NumEdges() {
		t.Fatalf("compressed shard dir declares %d edges, graph has %d", src.Info().NumEdges, g.NumEdges())
	}
	for _, name := range methods.StreamNames() {
		t.Run(name, func(t *testing.T) {
			spec := partition.NewSpec(8, 7)
			seq, err := methods.PartitionSource(context.Background(), name, src, spec)
			if err != nil {
				t.Fatal(err)
			}
			piped, err := methods.PartitionSourcePiped(context.Background(), name, src, spec)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := ownersChecksum(piped.Partitioning.Owner), ownersChecksum(seq.Partitioning.Owner); got != want {
				t.Fatalf("pipelined checksum %#x != sequential %#x", got, want)
			}
			if piped.Quality != seq.Quality {
				t.Fatalf("pipelined quality %+v != sequential %+v", piped.Quality, seq.Quality)
			}
			if err := piped.Partitioning.Validate(g); err != nil {
				t.Fatal(err)
			}
			if _, warned := piped.Stats.Extra["materialized_graph_bytes"]; warned {
				t.Fatalf("stream-capable %s was materialized on the pipelined path: %+v", name, piped.Stats)
			}
		})
	}
}

// TestCompressedShardsHalveScale16 pins the compression acceptance bar on
// the real workload: ESZ1 stripes of the scale-16 RMAT must occupy at most
// half the bytes of the raw EShard encoding, per aggregate and per file.
func TestCompressedShardsHalveScale16(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-16 generation in -short mode")
	}
	g := gen.RMAT(16, 16, 42)
	dir := writeCompressedShards(t, g, 8)
	stats, err := graph.ShardDirStats(dir)
	if err != nil {
		t.Fatal(err)
	}
	var disk, raw int64
	for _, st := range stats {
		if !st.Compressed {
			t.Fatalf("%s: expected a compressed shard", st.Path)
		}
		if st.Ratio < 2 {
			t.Errorf("%s: compression ratio %.2f < 2x (edges=%d disk=%d)",
				st.Path, st.Ratio, st.Edges, st.DiskBytes)
		}
		disk += st.DiskBytes
		raw += int64(st.Ratio * float64(st.DiskBytes))
	}
	if disk == 0 || float64(raw)/float64(disk) < 2 {
		t.Fatalf("aggregate compression ratio %.2f < 2x (raw=%d disk=%d)",
			float64(raw)/float64(disk), raw, disk)
	}
	t.Logf("scale-16 RMAT: %d edges, raw %d B -> esz1 %d B (%.2fx)",
		g.NumEdges(), raw, disk, float64(raw)/float64(disk))
}
