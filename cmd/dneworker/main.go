// Command dneworker is one machine of a multi-process Distributed NE run
// over TCP. All workers regenerate the same deterministic input graph from
// identical flags, connect to the rank-0 router, and execute the identical
// superstep protocol used by the in-process cluster.
//
// Rank 0 hosts the router and prints the final metrics:
//
//	dneworker -rank 0 -size 4 -addr 127.0.0.1:7777 -rmat 12 -ef 16 &
//	dneworker -rank 1 -size 4 -addr 127.0.0.1:7777 -rmat 12 -ef 16 &
//	dneworker -rank 2 -size 4 -addr 127.0.0.1:7777 -rmat 12 -ef 16 &
//	dneworker -rank 3 -size 4 -addr 127.0.0.1:7777 -rmat 12 -ef 16
//
// examples/multiprocess spawns this arrangement automatically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/partition"
)

func main() {
	var (
		rank   = flag.Int("rank", 0, "this machine's rank in [0,size)")
		size   = flag.Int("size", 4, "number of machines (= partitions)")
		addr   = flag.String("addr", "127.0.0.1:7777", "router address (rank 0 listens here)")
		scale  = flag.Int("rmat", 12, "RMAT scale of the shared input graph")
		ef     = flag.Int("ef", 16, "RMAT edge factor")
		seed   = flag.Int64("seed", 42, "shared random seed")
		alpha  = flag.Float64("alpha", 1.1, "imbalance factor")
		lambda = flag.Float64("lambda", 0.1, "expansion factor")
	)
	flag.Parse()
	if err := run(*rank, *size, *addr, *scale, *ef, *seed, *alpha, *lambda); err != nil {
		fmt.Fprintf(os.Stderr, "dneworker rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
}

func run(rank, size int, addr string, scale, ef int, seed int64, alpha, lambda float64) error {
	var wait func() error
	if rank == 0 {
		var err error
		_, wait, err = cluster.StartRouter(addr, size)
		if err != nil {
			return err
		}
	}
	// Every worker regenerates the identical graph deterministically.
	g := gen.RMAT(scale, ef, seed)

	node, err := dialWithRetry(addr, rank, size)
	if err != nil {
		return err
	}
	cfg := dne.DefaultConfig()
	cfg.Seed = seed
	cfg.Alpha = alpha
	cfg.Lambda = lambda

	// Ctrl-C aborts the run collectively: the local flag rides the next
	// superstep's select messages and every rank returns together.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	owner, stats, err := dne.PartitionOver(ctx, node, g, cfg)
	if err != nil {
		// Close politely (Bye) and, at rank 0, let the router drain the
		// final superstep's frames to the other ranks so they abort
		// collectively rather than finding a dead connection.
		_ = node.Close()
		if wait != nil {
			done := make(chan error, 1)
			go func() { done <- wait() }()
			select {
			case <-done:
			case <-time.After(3 * time.Second):
			}
		}
		return err
	}
	elapsed := time.Since(start)
	fmt.Printf("rank %d: iterations=%d partition-edges=%d comm=%.1fMB\n",
		rank, stats.Iterations, stats.PartEdges, float64(stats.CommBytes)/(1<<20))
	if rank == 0 {
		pt := &partition.Partitioning{NumParts: size, Owner: owner}
		if err := pt.Validate(g); err != nil {
			return fmt.Errorf("result validation: %w", err)
		}
		q := pt.Measure(g)
		fmt.Printf("rank 0: RESULT graph=%v parts=%d RF=%.4f EB=%.3f elapsed=%v\n",
			g, size, q.ReplicationFactor, q.EdgeBalance, elapsed)
	}
	if err := node.Close(); err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// dialWithRetry tolerates workers starting before the rank-0 router listens.
func dialWithRetry(addr string, rank, size int) (*cluster.TCPNode, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		node, err := cluster.DialTCP(addr, rank, size)
		if err == nil {
			return node, nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return nil, lastErr
}
