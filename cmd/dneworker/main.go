// Command dneworker is one machine of a multi-process Distributed NE run
// over TCP.
//
// In the shard mode (-shard-dir) each worker reads only its own slice of
// the input — the EShard files whose index ≡ rank (mod size), as written by
// gengraph -shards — so no process holds the full graph while partitioning
// (rank 0 assembles the final 12-byte-per-edge owner sequence at collection
// time, after the algorithm finishes). The workers shuffle their shards to
// 2D-grid owners, expand, and rank 0 prints the partitioning checksum,
// which equals dnepart -checksum for the same graph, seed and partition
// count:
//
//	gengraph -kind rmat -scale 16 -ef 16 -seed 42 -shards 8 -shard-dir shards/
//	dneworker -rank 0 -size 4 -addr 127.0.0.1:7777 -shard-dir shards/ &
//	dneworker -rank 1 -size 4 -addr 127.0.0.1:7777 -shard-dir shards/ &
//	dneworker -rank 2 -size 4 -addr 127.0.0.1:7777 -shard-dir shards/ &
//	dneworker -rank 3 -size 4 -addr 127.0.0.1:7777 -shard-dir shards/
//
// The legacy mode (no -shard-dir) regenerates the identical RMAT graph in
// every process from shared flags and runs the whole-graph path; it remains
// for A/B comparison against the shard data plane.
//
// Rank 0 hosts the router. examples/multiprocess spawns the arrangement
// automatically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
)

// hardAbortGrace is how long a worker keeps waiting for the collective
// (superstep-boundary) abort to complete after its context fires before the
// transport watchdog kills blocked receives outright.
const hardAbortGrace = 10 * time.Second

func main() {
	var (
		rank     = flag.Int("rank", 0, "this machine's rank in [0,size)")
		size     = flag.Int("size", 4, "number of machines (= partitions)")
		addr     = flag.String("addr", "127.0.0.1:7777", "router address (rank 0 listens here)")
		shardDir = flag.String("shard-dir", "", "read EShard files with index%size==rank from this directory")
		scale    = flag.Int("rmat", 12, "legacy mode: RMAT scale of the shared input graph")
		ef       = flag.Int("ef", 16, "legacy mode: RMAT edge factor")
		seed     = flag.Int64("seed", 42, "shared random seed")
		alpha    = flag.Float64("alpha", 1.1, "imbalance factor")
		lambda   = flag.Float64("lambda", 0.1, "expansion factor")

		ckptDir      = flag.String("ckpt-dir", "", "fault tolerance: write per-superstep checkpoints here and survive worker restarts (shard mode only)")
		ckptEvery    = flag.Int("ckpt-every", 1, "fault tolerance: checkpoint every N supersteps")
		maxRestarts  = flag.Int("max-restarts", 3, "fault tolerance: mesh rebuilds survived before giving up")
		rejoinWindow = flag.Duration("rejoin-window", 30*time.Second, "fault tolerance: how long the router waits for a restarted worker to rejoin")
		heartbeat    = flag.Duration("heartbeat", 0, "fault tolerance: heartbeat interval for detecting wedged peers (0 = off)")
	)
	flag.Parse()
	ft := ftFlags{dir: *ckptDir, every: *ckptEvery, maxRestarts: *maxRestarts,
		rejoinWindow: *rejoinWindow, heartbeat: *heartbeat}
	if err := run(*rank, *size, *addr, *shardDir, *scale, *ef, *seed, *alpha, *lambda, ft); err != nil {
		fmt.Fprintf(os.Stderr, "dneworker rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
}

// ftFlags bundles the fault-tolerance command line. A non-empty dir turns
// the feature on: checkpoints are written there, the rank-0 router accepts
// mesh rebuilds, and dials retry with backoff.
type ftFlags struct {
	dir          string
	every        int
	maxRestarts  int
	rejoinWindow time.Duration
	heartbeat    time.Duration
}

func (f ftFlags) enabled() bool { return f.dir != "" }

// heartbeatTimeout is the deadline paired with the heartbeat interval: a
// peer silent for four intervals is treated as dead.
func (f ftFlags) heartbeatTimeout() time.Duration {
	if f.heartbeat <= 0 {
		return 0
	}
	return 4 * f.heartbeat
}

func run(rank, size int, addr, shardDir string, scale, ef int, seed int64, alpha, lambda float64, ft ftFlags) error {
	if ft.enabled() && shardDir == "" {
		return fmt.Errorf("-ckpt-dir requires -shard-dir (checkpointing covers the shard data plane)")
	}
	var wait func() error
	if rank == 0 {
		ropt := cluster.RouterOptions{}
		if ft.enabled() {
			ropt.MaxRejoins = ft.maxRestarts
			ropt.RejoinWindow = ft.rejoinWindow
			ropt.HeartbeatTimeout = ft.heartbeatTimeout()
			ropt.Logf = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "router: "+format+"\n", args...)
			}
		}
		var err error
		_, wait, err = cluster.StartRouterOpts(addr, size, ropt)
		if err != nil {
			return err
		}
	}

	cfg := dne.DefaultConfig()
	cfg.Seed = seed
	cfg.Alpha = alpha
	cfg.Lambda = lambda

	// Ctrl-C aborts the run collectively: the local flag rides the next
	// superstep's select messages and every rank returns together. The
	// transport watchdog (hardCtx) is the backstop for when a peer is
	// already dead and those messages can never complete a superstep: a
	// grace period after the soft abort, blocked receives fail outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	hardCtx, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	go func() {
		<-ctx.Done()
		time.Sleep(hardAbortGrace)
		hardCancel()
	}()

	if ft.enabled() {
		// The fault-tolerant driver owns dialing: it reconnects after a
		// transport loss, so the node is created (and re-created) inside.
		start := time.Now()
		runErr := runShardsFT(ctx, hardCtx, rank, size, addr, shardDir, cfg, ft, start)
		if wait != nil {
			done := make(chan error, 1)
			go func() { done <- wait() }()
			select {
			case err := <-done:
				if runErr == nil {
					runErr = err
				}
			case <-time.After(3 * time.Second):
			}
		}
		return runErr
	}

	node, err := dialWithRetry(hardCtx, addr, rank, size)
	if err != nil {
		return err
	}

	start := time.Now()
	var runErr error
	if shardDir != "" {
		runErr = runShards(ctx, node, rank, size, shardDir, cfg, start)
	} else {
		runErr = runWholeGraph(ctx, node, rank, size, scale, ef, seed, cfg, start)
	}
	if runErr != nil {
		// Close politely (Bye) and, at rank 0, let the router drain the
		// final superstep's frames to the other ranks so they abort
		// collectively rather than finding a dead connection.
		_ = node.Close()
		if wait != nil {
			done := make(chan error, 1)
			go func() { done <- wait() }()
			select {
			case <-done:
			case <-time.After(3 * time.Second):
			}
		}
		return runErr
	}
	if err := node.Close(); err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// runShards is the sharded data plane: this rank loads only its own shard
// files and never sees the full graph.
func runShards(ctx context.Context, node *cluster.TCPNode, rank, size int, dir string, cfg dne.Config, start time.Time) error {
	shard, err := graph.ReadShardDir(dir, func(index, count uint32) bool {
		return int(index)%size == rank
	})
	if err != nil {
		return err
	}
	fmt.Printf("rank %d: loaded %d shard edges (|V|=%d) from %s\n",
		rank, shard.NumEdges(), shard.NumVertices, dir)
	res, stats, err := dne.PartitionShards(ctx, node, shard, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("rank %d: iterations=%d partition-edges=%d peak-mem=%.1fMB comm=%.1fMB\n",
		rank, stats.Iterations, stats.PartEdges,
		float64(stats.MemBytes)/(1<<20), float64(stats.CommBytes)/(1<<20))
	if res != nil {
		fmt.Printf("rank 0: RESULT |V|=%d |E|=%d parts=%d EB=%.3f checksum=%#x elapsed=%v\n",
			shard.NumVertices, res.NumEdges(), res.NumParts, res.EdgeBalance(),
			res.Checksum(), time.Since(start))
	}
	return nil
}

// runShardsFT is the fault-tolerant shard data plane: per-superstep
// checkpoints in ft.dir, dial retries with backoff, and rejoin after a
// transport loss. ctx aborts the run collectively at the next superstep
// boundary; hardCtx is the transport watchdog that kills blocked receives.
func runShardsFT(ctx, hardCtx context.Context, rank, size int, addr, dir string, cfg dne.Config, ft ftFlags, start time.Time) error {
	ckpt, err := dne.NewCheckpointer(ft.dir, rank, size, ft.every, cfg)
	if err != nil {
		return err
	}
	loadShard := func() (*graph.Shard, error) {
		shard, err := graph.ReadShardDir(dir, func(index, count uint32) bool {
			return int(index)%size == rank
		})
		if err != nil {
			return nil, err
		}
		fmt.Printf("rank %d: loaded %d shard edges (|V|=%d) from %s\n",
			rank, shard.NumEdges(), shard.NumVertices, dir)
		return shard, nil
	}
	pol := cluster.RetryPolicy{
		MaxAttempts: 100,
		BaseDelay:   100 * time.Millisecond,
		MaxDelay:    ft.rejoinWindow / 10,
		Seed:        cfg.Seed ^ int64(rank),
	}
	dopt := cluster.DialOptions{
		HeartbeatInterval: ft.heartbeat,
		HeartbeatTimeout:  ft.heartbeatTimeout(),
	}
	connect := func(context.Context) (cluster.Comm, error) {
		return cluster.DialTCPRetry(hardCtx, addr, rank, size, pol, dopt)
	}
	res, stats, err := dne.PartitionShardsFT(ctx, cfg, dne.FTOptions{
		Checkpoint:  ckpt,
		Connect:     connect,
		LoadShard:   loadShard,
		MaxRestarts: ft.maxRestarts,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("rank %d: iterations=%d partition-edges=%d peak-mem=%.1fMB comm=%.1fMB\n",
		rank, stats.Iterations, stats.PartEdges,
		float64(stats.MemBytes)/(1<<20), float64(stats.CommBytes)/(1<<20))
	if res != nil {
		fmt.Printf("rank 0: RESULT |E|=%d parts=%d EB=%.3f checksum=%#x elapsed=%v\n",
			res.NumEdges(), res.NumParts, res.EdgeBalance(),
			res.Checksum(), time.Since(start))
	}
	return nil
}

// runWholeGraph is the legacy path: every worker regenerates the identical
// graph deterministically and holds all of it.
func runWholeGraph(ctx context.Context, node *cluster.TCPNode, rank, size, scale, ef int, seed int64, cfg dne.Config, start time.Time) error {
	g := gen.RMAT(scale, ef, seed)
	owner, stats, err := dne.PartitionOver(ctx, node, g, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("rank %d: iterations=%d partition-edges=%d peak-mem=%.1fMB comm=%.1fMB\n",
		rank, stats.Iterations, stats.PartEdges,
		float64(stats.MemBytes)/(1<<20), float64(stats.CommBytes)/(1<<20))
	if rank == 0 {
		pt := &partition.Partitioning{NumParts: size, Owner: owner}
		if err := pt.Validate(g); err != nil {
			return fmt.Errorf("result validation: %w", err)
		}
		q := pt.Measure(g)
		fmt.Printf("rank 0: RESULT graph=%v parts=%d RF=%.4f EB=%.3f checksum=%#x elapsed=%v\n",
			g, size, q.ReplicationFactor, q.EdgeBalance, partition.Checksum(owner), time.Since(start))
	}
	return nil
}

// dialWithRetry tolerates workers starting before the rank-0 router listens.
func dialWithRetry(ctx context.Context, addr string, rank, size int) (*cluster.TCPNode, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		node, err := cluster.DialTCPContext(ctx, addr, rank, size)
		if err == nil {
			return node, nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return nil, lastErr
}
