// Command gengraph emits synthetic graphs as edge lists or as sharded
// binary edge files (the EShard format read by dneworker and dnepart).
//
// Usage:
//
//	gengraph -kind rmat -scale 16 -ef 16 > graph.txt
//	gengraph -kind powerlaw -n 100000 -alpha 2.4 > graph.txt
//	gengraph -kind road -rows 200 -cols 220 > road.txt
//	gengraph -kind ringcomplete -n 8 > thm2.txt
//	gengraph -kind rmat -scale 20 -ef 16 -shards 16 -shard-dir shards/
//
// Kinds: rmat (Graph500 parameters), powerlaw (Chung–Lu), er, road,
// ringcomplete (the Theorem-2 tightness construction), star.
//
// With -shards/-shard-dir the raw edge stream is routed by hash across N
// shard files (shard-0000-of-0016.esh, ...). For rmat and er the stream is
// generated and written in fixed-size chunks without ever materializing the
// edge slice, so memory stays flat no matter the scale; the remaining kinds
// materialize first (their generators are small) and then shard.
//
// -canonical changes the shard layout to canonical stripes: the graph is
// materialized, deduplicated and sorted (exactly FromEdges), and shard i
// holds the i-th contiguous stripe of the canonical edge list. Reading the
// set back in shard-index order (graph.DirSource, dnepart -stream) then
// replays the canonical list, so a streamed partitioning of the directory
// is bit-identical — same checksum — to an in-memory run on the same
// graph. The price is the generator-side materialization; the consumers
// still stream.
//
// -compress (requires -canonical) writes the stripes in the delta+varint
// ESZ1 format (*.esz) instead of raw EShard: the same edge stream, read by
// the same consumers, from several-fold fewer disk bytes. Sortedness is
// what compresses, which is why the flag rides on -canonical.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

func main() {
	var (
		kind     = flag.String("kind", "rmat", "rmat | powerlaw | er | road | ringcomplete | star")
		scale    = flag.Int("scale", 16, "rmat: 2^scale vertices")
		ef       = flag.Int("ef", 16, "rmat/er: edge factor")
		n        = flag.Int("n", 1<<16, "powerlaw/er/star: vertices; ringcomplete: clique size")
		alpha    = flag.Float64("alpha", 2.4, "powerlaw scaling parameter")
		rows     = flag.Int("rows", 200, "road: rows")
		cols     = flag.Int("cols", 220, "road: cols")
		seed     = flag.Int64("seed", 42, "random seed")
		shards   = flag.Int("shards", 0, "write this many EShard files instead of a text edge list")
		shardDir = flag.String("shard-dir", "", "directory for -shards output (created if missing)")
		canon    = flag.Bool("canonical", false, "shard as canonical stripes (dedup+sorted; dnepart -stream output matches in-memory runs)")
		compress = flag.Bool("compress", false, "with -canonical: write delta+varint compressed ESZ1 shards (*.esz)")
	)
	flag.Parse()

	if *canon && *shards <= 0 {
		fmt.Fprintln(os.Stderr, "gengraph: -canonical requires -shards/-shard-dir")
		os.Exit(2)
	}
	if *compress && !*canon {
		fmt.Fprintln(os.Stderr, "gengraph: -compress requires -canonical (only sorted stripes compress)")
		os.Exit(2)
	}
	if *shards > 0 {
		if *shardDir == "" {
			fmt.Fprintln(os.Stderr, "gengraph: -shards requires -shard-dir")
			os.Exit(2)
		}
		if *canon {
			if err := writeCanonicalShards(*kind, *scale, *ef, *n, *alpha, *rows, *cols, *seed, *shards, *shardDir, *compress); err != nil {
				fatal(err)
			}
			return
		}
		if err := writeShards(*kind, *scale, *ef, *n, *alpha, *rows, *cols, *seed, *shards, *shardDir); err != nil {
			fatal(err)
		}
		return
	}

	g, err := materialize(*kind, *scale, *ef, *n, *alpha, *rows, *cols, *seed)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "# %s |V|=%d |E|=%d\n", *kind, g.NumVertices(), g.NumEdges())
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
		fatal(err)
	}
}

func materialize(kind string, scale, ef, n int, alpha float64, rows, cols int, seed int64) (*graph.Graph, error) {
	switch kind {
	case "rmat":
		return gen.RMAT(scale, ef, seed), nil
	case "powerlaw":
		return gen.PowerLaw(uint32(n), alpha, seed), nil
	case "er":
		return gen.ER(uint32(n), int64(n*ef), seed), nil
	case "road":
		return gen.Road(rows, cols, seed), nil
	case "ringcomplete":
		return gen.RingPlusComplete(n), nil
	case "star":
		return gen.Star(uint32(n)), nil
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}

// writeShards streams the generated edges across count shard files. rmat
// and er stream straight from the generator (no full edge slice, memory
// bounded by the writers' chunk buffers); other kinds materialize first.
func writeShards(kind string, scale, ef, n int, alpha float64, rows, cols int, seed int64, count int, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var numVertices uint32
	var stream func(emit func(u, v uint32)) error
	switch kind {
	case "rmat":
		numVertices = uint32(1) << scale
		stream = func(emit func(u, v uint32)) error {
			gen.StreamRMAT(scale, ef, seed, emit)
			return nil
		}
	case "er":
		numVertices = uint32(n)
		stream = func(emit func(u, v uint32)) error {
			gen.StreamER(uint32(n), int64(n*ef), seed, emit)
			return nil
		}
	default:
		g, err := materialize(kind, scale, ef, n, alpha, rows, cols, seed)
		if err != nil {
			return err
		}
		numVertices = g.NumVertices()
		stream = func(emit func(u, v uint32)) error {
			for _, e := range g.Edges() {
				emit(e.U, e.V)
			}
			return nil
		}
	}

	files := make([]*os.File, count)
	writers := make([]*graph.ShardWriter, count)
	for i := range writers {
		f, err := os.Create(filepath.Join(dir, graph.ShardFileName(i, count)))
		if err != nil {
			return err
		}
		files[i] = f
		sw, err := graph.NewShardWriter(f, graph.ShardInfo{
			NumVertices: numVertices, Index: uint32(i), Count: uint32(count),
		})
		if err != nil {
			f.Close()
			return err
		}
		writers[i] = sw
	}
	var emitErr error
	err := stream(func(u, v uint32) {
		if emitErr != nil || u == v {
			return
		}
		k := graph.PackEdge(u, v)
		emitErr = writers[graph.ShardRoute(k, uint32(count))].AppendPacked(k)
	})
	if err == nil {
		err = emitErr
	}
	var total uint64
	for i, sw := range writers {
		if cerr := sw.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if cerr := files[i].Close(); cerr != nil && err == nil {
			err = cerr
		}
		total += sw.NumWritten()
	}
	if err != nil {
		return err
	}
	fmt.Printf("gengraph: %s |V|=%d raw-edges=%d -> %d shards in %s\n",
		kind, numVertices, total, count, dir)
	return nil
}

// writeCanonicalShards materializes the graph and stripes its canonical
// edge list across count shard files (graph.WriteCanonicalShards, or the
// compressed ESZ1 variant).
func writeCanonicalShards(kind string, scale, ef, n int, alpha float64, rows, cols int, seed int64, count int, dir string, compress bool) error {
	g, err := materialize(kind, scale, ef, n, alpha, rows, cols, seed)
	if err != nil {
		return err
	}
	write, layout := graph.WriteCanonicalShards, "canonical shard stripes"
	if compress {
		write, layout = graph.WriteCanonicalShardsCompressed, "compressed canonical shard stripes"
	}
	if err := write(dir, g, count); err != nil {
		return err
	}
	fmt.Printf("gengraph: %s |V|=%d |E|=%d -> %d %s in %s\n",
		kind, g.NumVertices(), g.NumEdges(), count, layout, dir)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
