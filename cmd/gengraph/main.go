// Command gengraph emits synthetic graphs as edge lists.
//
// Usage:
//
//	gengraph -kind rmat -scale 16 -ef 16 > graph.txt
//	gengraph -kind powerlaw -n 100000 -alpha 2.4 > graph.txt
//	gengraph -kind road -rows 200 -cols 220 > road.txt
//	gengraph -kind ringcomplete -n 8 > thm2.txt
//
// Kinds: rmat (Graph500 parameters), powerlaw (Chung–Lu), er, road,
// ringcomplete (the Theorem-2 tightness construction), star.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
)

func main() {
	var (
		kind  = flag.String("kind", "rmat", "rmat | powerlaw | er | road | ringcomplete | star")
		scale = flag.Int("scale", 16, "rmat: 2^scale vertices")
		ef    = flag.Int("ef", 16, "rmat/er: edge factor")
		n     = flag.Int("n", 1<<16, "powerlaw/er/star: vertices; ringcomplete: clique size")
		alpha = flag.Float64("alpha", 2.4, "powerlaw scaling parameter")
		rows  = flag.Int("rows", 200, "road: rows")
		cols  = flag.Int("cols", 220, "road: cols")
		seed  = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "rmat":
		g = gen.RMAT(*scale, *ef, *seed)
	case "powerlaw":
		g = gen.PowerLaw(uint32(*n), *alpha, *seed)
	case "er":
		g = gen.ER(uint32(*n), int64(*n**ef), *seed)
	case "road":
		g = gen.Road(*rows, *cols, *seed)
	case "ringcomplete":
		g = gen.RingPlusComplete(*n)
	case "star":
		g = gen.Star(uint32(*n))
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "# %s |V|=%d |E|=%d\n", *kind, g.NumVertices(), g.NumEdges())
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := graph.WriteEdgeList(os.Stdout, g); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
