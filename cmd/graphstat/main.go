// Command graphstat reports the degree statistics and power-law tail fit of
// a graph — the calibration the paper's Table-1 analysis rests on (its
// bounds are parameterised by the Clauset-formulation scaling parameter α,
// Eq. 6). Feed it a synthetic graph or an edge-list file to check that a
// dataset has the degree skew the skewed-graph claims require.
//
// Usage:
//
//	graphstat -kind rmat -scale 16 -ef 16
//	graphstat -in graph.txt
//	graphstat -shard-dir shards/               # EShard set, no conversion
//	graphstat -kind road -rows 200 -cols 220   # non-skewed contrast
//
// -shard-dir inspects a directory of EShard files in place: the set is
// validated exactly like every shard consumer (ReadShardDir's checks), and
// the degree statistics come from one streaming pass — the edge list is
// never materialized, so a shard set bigger than memory still inspects
// fine. Raw (*.esh), compressed (*.esz, gengraph -compress) and mixed
// directories are all recognized; a per-file table reports decoded edges,
// on-disk bytes and the compression ratio against the raw encoding.
// Degrees count the raw stream: a hash-routed set written by plain
// gengraph -shards counts duplicate samples per occurrence, a canonical
// set (gengraph -canonical) matches the materialized graph exactly.
//
// Output includes the Table-1 theoretical replication-factor bounds
// evaluated at the fitted α when 2 < α < 3.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/distributedne/dne/internal/bound"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/powerlaw"
)

func main() {
	var (
		in       = flag.String("in", "", "edge-list file (overrides -kind)")
		shardDir = flag.String("shard-dir", "", "EShard directory to inspect in place (overrides -kind)")
		kind     = flag.String("kind", "rmat", "rmat | powerlaw | er | road | star")
		scale    = flag.Int("scale", 14, "rmat: 2^scale vertices")
		ef       = flag.Int("ef", 16, "rmat/er: edge factor")
		n        = flag.Int("n", 1<<16, "powerlaw/er/star: vertices")
		alpha    = flag.Float64("alpha", 2.4, "powerlaw scaling parameter")
		rows     = flag.Int("rows", 200, "road: rows")
		cols     = flag.Int("cols", 220, "road: cols")
		seed     = flag.Int64("seed", 42, "random seed")
		parts    = flag.Int("p", 256, "partition count for the bound table")
		ccdf     = flag.Bool("ccdf", false, "also dump the degree CCDF (value<TAB>ccdf)")
	)
	flag.Parse()

	degs, err := loadDegrees(*shardDir, *in, *kind, *scale, *ef, *n, *alpha, *rows, *cols, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphstat:", err)
		os.Exit(1)
	}
	h := powerlaw.NewHistogram(degs)
	s := h.Summary()
	fmt.Printf("degree skew: mean=%.2f p99=%d max=%d gini=%.3f\n", s.Mean, s.P99, s.Max, s.Gini)

	fit, err := powerlaw.FitTail(degs)
	if err != nil {
		fmt.Printf("power-law fit: n/a (%v)\n", err)
	} else {
		fmt.Println(fit)
		verdict := "weak or non-power-law tail"
		switch {
		case fit.KS < 0.05:
			verdict = "strong power-law tail"
		case fit.KS < 0.15:
			verdict = "plausible power-law tail"
		}
		fmt.Printf("verdict: %s (KS=%.4f)\n", verdict, fit.KS)
		if fit.Alpha > 2 && fit.Alpha < 3 {
			fmt.Printf("\nTable-1 theoretical RF bounds at fitted alpha=%.2f, |P|=%d:\n", fit.Alpha, *parts)
			fmt.Printf("  Random (1D-hash)  %.2f\n", bound.Random(fit.Alpha, *parts))
			fmt.Printf("  Grid   (2D-hash)  %.2f\n", bound.Grid(fit.Alpha, *parts))
			fmt.Printf("  DBH               %.2f\n", bound.DBH(fit.Alpha, *parts))
			fmt.Printf("  Distributed NE    %.2f\n", bound.DNE(fit.Alpha))
		}
	}

	if *ccdf {
		fmt.Println("\n# degree\tccdf")
		if err := h.WriteLogLog(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "graphstat:", err)
			os.Exit(1)
		}
	}
}

// loadDegrees produces the non-zero degree sequence: from a streaming pass
// over a shard directory (nothing materialized), or from a materialized
// graph for the other inputs.
func loadDegrees(shardDir, in, kind string, scale, ef, n int, alpha float64, rows, cols int, seed int64) ([]int64, error) {
	if shardDir != "" {
		src, err := graph.DirSource(shardDir)
		if err != nil {
			return nil, err
		}
		info := src.Info()
		if err := printShardFiles(shardDir); err != nil {
			return nil, err
		}
		deg, err := partition.Degrees(context.Background(), src, info.NumVertices)
		if err != nil {
			return nil, err
		}
		degs := make([]int64, 0, len(deg))
		var maxDeg int64
		for _, d := range deg {
			if d > 0 {
				degs = append(degs, int64(d))
				if int64(d) > maxDeg {
					maxDeg = int64(d)
				}
			}
		}
		avg := 0.0
		if info.NumVertices > 0 {
			avg = 2 * float64(info.NumEdges) / float64(info.NumVertices)
		}
		fmt.Printf("shard set: %s (validated, streamed)\n", info.Name)
		fmt.Printf("graph: |V|=%d |E|=%d avg-degree=%.2f max-degree=%d\n",
			info.NumVertices, info.NumEdges, avg, maxDeg)
		return degs, nil
	}
	g, err := load(in, kind, scale, ef, n, alpha, rows, cols, seed)
	if err != nil {
		return nil, err
	}
	fmt.Printf("graph: |V|=%d |E|=%d avg-degree=%.2f max-degree=%d\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree(), g.MaxDegree())
	degs := make([]int64, 0, g.NumVertices())
	for v := uint32(0); v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > 0 {
			degs = append(degs, d)
		}
	}
	return degs, nil
}

// printShardFiles reports each shard file's on-disk footprint: decoded
// edges, bytes on disk, and the compression ratio against what the raw
// EShard encoding of the same edges would occupy (1.00 for raw files).
func printShardFiles(dir string) error {
	stats, err := graph.ShardDirStats(dir)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %-6s %12s %12s %7s\n", "# file", "format", "edges", "disk-bytes", "ratio")
	var edges uint64
	var disk, raw int64
	for _, st := range stats {
		format := "raw"
		if st.Compressed {
			format = "esz1"
		}
		fmt.Printf("%-28s %-6s %12d %12d %6.2fx\n",
			filepath.Base(st.Path), format, st.Edges, st.DiskBytes, st.Ratio)
		edges += st.Edges
		disk += st.DiskBytes
		raw += int64(float64(st.DiskBytes) * st.Ratio)
	}
	totalRatio := 1.0
	if disk > 0 {
		totalRatio = float64(raw) / float64(disk)
	}
	fmt.Printf("%-28s %-6s %12d %12d %6.2fx\n", "# total", "", edges, disk, totalRatio)
	return nil
}

func load(in, kind string, scale, ef, n int, alpha float64, rows, cols int, seed int64) (*graph.Graph, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f)
	}
	switch kind {
	case "rmat":
		return gen.RMAT(scale, ef, seed), nil
	case "powerlaw":
		return gen.PowerLaw(uint32(n), alpha, seed), nil
	case "er":
		return gen.ER(uint32(n), int64(n*ef), seed), nil
	case "road":
		return gen.Road(rows, cols, seed), nil
	case "star":
		return gen.Star(uint32(n)), nil
	}
	return nil, fmt.Errorf("unknown kind %q", kind)
}
