package main

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/distributedne/dne/internal/obs"
)

// scraper polls an in-process registry's Prometheus text exposition while a
// workload runs — the identical bytes a Prometheus server would scrape —
// and recovers the server-side query-latency quantile from the histogram
// buckets. Comparing that against the client-side quantile measured by the
// workload shows how much a bucket-quantile read drifts from the measured
// tail: the drift bounds what a dashboard built on /metrics under-, or
// over-states real client latency by.
type scraper struct {
	reg      *obs.Registry
	interval time.Duration
	stop     chan struct{}
	done     chan struct{}

	mu       sync.Mutex
	scrapes  int
	lastText string
}

func newScraper(reg *obs.Registry, interval time.Duration) *scraper {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	s := &scraper{reg: reg, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{})}
	go s.run()
	return s
}

func (s *scraper) run() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.scrape()
		case <-s.stop:
			return
		}
	}
}

func (s *scraper) scrape() {
	var b strings.Builder
	_ = s.reg.WritePrometheus(&b)
	s.mu.Lock()
	s.scrapes++
	s.lastText = b.String()
	s.mu.Unlock()
}

// close stops the poll loop and takes one final scrape so the parsed
// exposition covers the complete run.
func (s *scraper) close() {
	close(s.stop)
	<-s.done
	s.scrape()
}

// serverQuantile reads quantile q of the named histogram family from the
// last scraped exposition, merging every label set (e.g. the per-kind
// children of dne_store_query_duration_seconds). The bool is false when the
// family has no samples.
func (s *scraper) serverQuantile(family string, q float64) (time.Duration, bool) {
	s.mu.Lock()
	text := s.lastText
	s.mu.Unlock()
	sec, ok := histogramQuantile(text, family, q)
	if !ok || math.IsInf(sec, 1) {
		return 0, false
	}
	return time.Duration(sec * float64(time.Second)), true
}

func (s *scraper) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrapes
}

// driftLine renders the server-vs-client comparison for one method.
func (s *scraper) driftLine(method string, clientP99 time.Duration) string {
	serverP99, ok := s.serverQuantile("dne_store_query_duration_seconds", 0.99)
	if !ok {
		return fmt.Sprintf("scrape: %-8s no server-side samples (%d scrapes)", method, s.count())
	}
	drift := 0.0
	if clientP99 > 0 {
		drift = (float64(serverP99) - float64(clientP99)) / float64(clientP99) * 100
	}
	return fmt.Sprintf("scrape: %-8s server p99 %s ms, client p99 %s ms, drift %+.1f%% (%d scrapes)",
		method, ms(serverP99), ms(clientP99), drift, s.count())
}

// histogramQuantile computes quantile q of one histogram family from
// Prometheus text exposition, merging all children. Bucket parsing follows
// the exposition contract: per-child cumulative counts over ascending le
// bounds, +Inf last. Returns the le upper bound (in the exported unit) of
// the bucket holding the quantile rank.
func histogramQuantile(text, family string, q float64) (float64, bool) {
	prefix := family + "_bucket{"
	type child struct {
		les []float64
		cum []uint64
	}
	children := map[string]*child{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		sel, count, ok := strings.Cut(line[len(prefix)-1:], " ")
		if !ok {
			continue
		}
		le, rest, ok := cutLabel(sel, "le")
		if !ok {
			continue
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			bound, _ = strconv.ParseFloat(le, 64)
		}
		n, err := strconv.ParseUint(count, 10, 64)
		if err != nil {
			continue
		}
		c := children[rest]
		if c == nil {
			c = &child{}
			children[rest] = c
		}
		c.les = append(c.les, bound)
		c.cum = append(c.cum, n)
	}
	// Cumulative per child → per-bucket increments, merged across children.
	merged := map[float64]uint64{}
	var total uint64
	for _, c := range children {
		var prev uint64
		for i, le := range c.les {
			inc := c.cum[i] - prev
			prev = c.cum[i]
			if math.IsInf(le, 1) {
				total += c.cum[i]
				continue
			}
			merged[le] += inc
		}
	}
	if total == 0 {
		return 0, false
	}
	les := make([]float64, 0, len(merged))
	for le := range merged {
		les = append(les, le)
	}
	sort.Float64s(les)
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, le := range les {
		cum += merged[le]
		if cum >= rank {
			return le, true
		}
	}
	// Rank falls in the +Inf bucket: the exposition's finite bounds don't
	// cover it (shouldn't happen with our writer, which emits every
	// non-empty bucket).
	return math.Inf(1), true
}

// cutLabel removes `name="value"` from a {..} selector, returning the value
// and the selector without that pair (child identity for merging).
func cutLabel(sel, name string) (value, rest string, ok bool) {
	i := strings.Index(sel, name+`="`)
	if i < 0 {
		return "", "", false
	}
	start := i + len(name) + 2
	end := strings.Index(sel[start:], `"`)
	if end < 0 {
		return "", "", false
	}
	value = sel[start : start+end]
	rest = sel[:i] + sel[start+end+1:]
	return value, rest, true
}
