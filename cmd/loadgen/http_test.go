package main

import (
	"context"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func listenOn(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// TestRetryClientSurvivesSheds: a server that sheds the first requests with
// 503 + Retry-After must be retried until it serves, with the sheds counted
// separately and no error surfaced.
func TestRetryClientSurvivesSheds(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()

	rc := newRetryClient(8)
	rc.base = time.Millisecond
	b, err := rc.postJSON(context.Background(), srv.URL, []byte("{}"), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("retries did not absorb the sheds: %v", err)
	}
	if !strings.Contains(string(b), "ok") {
		t.Fatalf("unexpected body %q", b)
	}
	if got := rc.shedRetries.Load(); got != 3 {
		t.Fatalf("shedRetries = %d, want 3", got)
	}
	if rc.connRetries.Load() != 0 {
		t.Fatalf("connRetries = %d, want 0", rc.connRetries.Load())
	}
}

// TestRetryClientSurvivesConnectionErrors: a refused connection (server not
// yet restarted) is a transport-level transient and must be retried, counted
// under connRetries.
func TestRetryClientSurvivesConnectionErrors(t *testing.T) {
	// Reserve an address, then close the listener so the first dials are
	// refused; restart a real server on the same address mid-retry.
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	addr := srv.Listener.Addr().String()
	srv.Listener.Close()

	rc := newRetryClient(20)
	rc.base = 5 * time.Millisecond
	done := make(chan error, 1)
	go func() {
		_, err := rc.postJSON(context.Background(), "http://"+addr, []byte("{}"), rand.New(rand.NewSource(2)))
		done <- err
	}()

	// Let a few dials fail, then bring the server up on the same port.
	deadline := time.Now().Add(10 * time.Second)
	for rc.connRetries.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no connection retries observed")
		}
		time.Sleep(time.Millisecond)
	}
	srv2 := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	srv2.Listener.Close()
	var err error
	srv2.Listener, err = listenOn(addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv2.Start()
	defer srv2.Close()

	if err := <-done; err != nil {
		t.Fatalf("retries did not absorb the refused connections: %v", err)
	}
	if rc.connRetries.Load() == 0 {
		t.Fatal("connRetries not counted")
	}
}

// TestRetryClientGivesUpAndReportsCause: when the budget is exhausted the
// error names the attempt count and the last transient cause.
func TestRetryClientGivesUpAndReportsCause(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	rc := newRetryClient(3)
	rc.base = time.Millisecond
	_, err := rc.postJSON(context.Background(), srv.URL, []byte("{}"), rand.New(rand.NewSource(3)))
	if err == nil {
		t.Fatal("permanently shedding server did not error")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error %q does not name the attempt budget", err)
	}
	if rc.shedRetries.Load() != 3 {
		t.Fatalf("shedRetries = %d, want 3", rc.shedRetries.Load())
	}
}

// TestRetryClientDoesNotRetryTerminalStatus: a 400 is the caller's bug, not
// a transient — exactly one request, immediate error.
func TestRetryClientDoesNotRetryTerminalStatus(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	rc := newRetryClient(8)
	rc.base = time.Millisecond
	_, err := rc.postJSON(context.Background(), srv.URL, []byte("{}"), rand.New(rand.NewSource(4)))
	if err == nil {
		t.Fatal("400 did not surface as an error")
	}
	if calls.Load() != 1 {
		t.Fatalf("terminal status retried: %d calls", calls.Load())
	}
}
