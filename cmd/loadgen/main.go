// Command loadgen measures the online serving cost of edge partitionings.
// It partitions one graph with each requested method, materializes every
// result into a sharded query store (internal/store), drives an identical
// query workload against each store, and prints a table comparing
// throughput, latency percentiles, and — the point of the exercise —
// cross-shard hops per query, the serving-time analogue of the paper's
// replication factor.
//
//	loadgen -methods random,hdrf,dne -parts 8 -rmat-scale 12 -rmat-ef 8 \
//	        -queries 5000 -workers 8 -khop-ratio 0.3 -k 2
//
// A method with a lower replication factor routes fewer mirror fetches, so
// its hops/query column is correspondingly lower for the same workload.
//
// With -live, loadgen instead drives a mixed ingest+query workload against
// the live-graph subsystem (internal/live): a seeded churn stream is
// ingested incrementally, then the same query mix is measured in three
// phases — steady state, during a compaction, and during a bounded
// rebalance — reporting per-phase latency percentiles alongside the
// migration and ingest rates:
//
//	loadgen -live -parts 8 -rmat-scale 14 -rmat-ef 8 -delete-ratio 0.15
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/live"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/obs"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/store"
)

func main() {
	methodList := flag.String("methods", "random,hdrf,dne", "comma-separated partitioning methods to compare")
	parts := flag.Int("parts", 8, "number of shards (partitions)")
	seed := flag.Int64("seed", 1, "partitioner seed")

	graphPath := flag.String("graph", "", "binary graph file (DNE1); overrides -rmat-*")
	rmatScale := flag.Int("rmat-scale", 12, "RMAT scale (2^scale vertices) when no -graph is given")
	rmatEF := flag.Int("rmat-ef", 8, "RMAT edge factor")
	graphSeed := flag.Int64("graph-seed", 1, "RMAT generator seed")

	queries := flag.Int("queries", 5000, "queries per method")
	qps := flag.Float64("qps", 0, "target aggregate QPS (0 = closed loop)")
	workers := flag.Int("workers", 8, "concurrent query workers")
	khopRatio := flag.Float64("khop-ratio", 0.3, "fraction of queries that are k-hop traversals")
	k := flag.Int("k", 2, "traversal depth of k-hop queries")
	workloadSeed := flag.Int64("workload-seed", 7, "query-selection seed (same seed = identical workload)")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall deadline")

	scrape := flag.Bool("scrape", false, "poll the in-process Prometheus exposition during each run and report server-side vs client-side p99 drift")
	scrapeInterval := flag.Duration("scrape-interval", 200*time.Millisecond, "poll period of -scrape")

	url := flag.String("url", "", "drive a remote dneserve at this base URL instead of an in-process store (first -methods entry; transient errors are retried with backoff)")
	retries := flag.Int("retries", 8, "http: max attempts per request before a transient error counts as a failure")

	liveMode := flag.Bool("live", false, "drive a mixed ingest+query workload against the live-graph subsystem")
	churnFactor := flag.Float64("churn-factor", 1.2, "live: stream length as a multiple of |E|")
	deleteRatio := flag.Float64("delete-ratio", 0.1, "live: fraction of stream events that are deletions")
	ingestBatch := flag.Int("ingest-batch", 4096, "live: events per ingest batch (one epoch per batch)")
	rebalanceBudget := flag.Int("rebalance-budget", 10000, "live: migration budget of the rebalance phase")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	g, err := loadGraph(*graphPath, *rmatScale, *rmatEF, *graphSeed)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if *url != "" {
		runHTTP(ctx, g, httpOptions{
			url:      strings.TrimRight(*url, "/"),
			method:   strings.TrimSpace(strings.Split(*methodList, ",")[0]),
			parts:    *parts,
			seed:     *seed,
			queries:  *queries,
			workers:  *workers,
			khop:     *khopRatio,
			k:        *k,
			wseed:    *workloadSeed,
			attempts: *retries,
		})
		return
	}
	if *liveMode {
		runLive(ctx, g, liveOptions{
			parts: *parts, seed: *seed,
			churnFactor: *churnFactor, deleteRatio: *deleteRatio,
			cfg: bench.LiveConfig{
				IngestBatch:     *ingestBatch,
				Queries:         *queries,
				Workers:         *workers,
				KHopRatio:       *khopRatio,
				KHopK:           *k,
				Seed:            *workloadSeed,
				RebalanceBudget: *rebalanceBudget,
			},
		})
		return
	}
	fmt.Printf("graph: %v, %d shards, %d queries/method (%.0f%% khop k=%d, workers=%d",
		g, *parts, *queries, *khopRatio*100, *k, *workers)
	if *qps > 0 {
		fmt.Printf(", %.0f qps", *qps)
	}
	fmt.Println(")")

	table := &bench.Table{Header: []string{
		"method", "rf", "part(s)", "build(s)", "qps", "p50(ms)", "p95(ms)", "p99(ms)", "hops/query", "imbalance",
	}}
	cfg := bench.ServingConfig{
		Queries:   *queries,
		QPS:       *qps,
		Workers:   *workers,
		KHopRatio: *khopRatio,
		KHopK:     *k,
		Seed:      *workloadSeed,
	}
	var driftLines []string
	for _, name := range strings.Split(*methodList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		spec := partition.NewSpec(*parts, *seed)
		pr, spec, err := methods.New(name, spec)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		res, err := pr.Partition(ctx, g, spec)
		if err != nil {
			log.Fatalf("loadgen: %s: partition: %v", name, err)
		}
		buildStart := time.Now()
		st, err := store.Build(g, res)
		if err != nil {
			log.Fatalf("loadgen: %s: store build: %v", name, err)
		}
		buildElapsed := time.Since(buildStart)
		// -scrape attaches a registry to the store and polls its Prometheus
		// exposition while the workload runs, exactly as a scraping
		// Prometheus would; the drift lines after the table compare the
		// bucket-derived server-side p99 with the measured client-side p99.
		var sc *scraper
		if *scrape {
			reg := obs.NewRegistry()
			st.SetObs(store.NewObs(reg))
			sc = newScraper(reg, *scrapeInterval)
		}
		rep, err := bench.RunServing(ctx, st, cfg)
		if sc != nil {
			sc.close()
			driftLines = append(driftLines, sc.driftLine(pr.Name(), rep.LatencyP99))
		}
		if err != nil {
			log.Fatalf("loadgen: %s: workload: %v", name, err)
		}
		table.Add(
			pr.Name(),
			res.Quality.ReplicationFactor,
			res.Stats.PartitionTime(),
			buildElapsed,
			fmt.Sprintf("%.0f", rep.Throughput),
			ms(rep.LatencyP50),
			ms(rep.LatencyP95),
			ms(rep.LatencyP99),
			rep.HopsPerQuery,
			rep.TouchImbalance,
		)
	}
	table.Print(os.Stdout)
	for _, line := range driftLines {
		fmt.Println(line)
	}
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

// liveOptions bundles the live-mode knobs.
type liveOptions struct {
	parts       int
	seed        int64
	churnFactor float64
	deleteRatio float64
	cfg         bench.LiveConfig
}

// runLive drives the mixed ingest+query workload of -live and prints the
// per-phase latency table.
func runLive(ctx context.Context, g *graph.Graph, opt liveOptions) {
	nEvents := int(opt.churnFactor * float64(g.NumEdges()))
	events := dynpart.Churn(g, nEvents, opt.deleteRatio, opt.seed)
	dir, err := os.MkdirTemp("", "loadgen-live-")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	defer os.RemoveAll(dir)
	lv, err := live.Open(dir, live.Config{NumParts: opt.parts, Seed: opt.seed})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	defer lv.Close()

	fmt.Printf("live: %v, %d partitions, %d events (%.0f%% deletes), %d queries/phase (%.0f%% khop k=%d, workers=%d)\n",
		g, opt.parts, len(events), opt.deleteRatio*100, opt.cfg.Queries,
		opt.cfg.KHopRatio*100, opt.cfg.KHopK, opt.cfg.Workers)

	rep, err := bench.RunLive(ctx, lv, events, opt.cfg)
	if err != nil {
		log.Fatalf("loadgen: live workload: %v", err)
	}

	table := &bench.Table{Header: []string{
		"phase", "queries", "qps", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)",
	}}
	for _, ph := range []bench.LivePhase{rep.Steady, rep.DuringCompaction, rep.DuringRebalance} {
		table.Add(ph.Phase, ph.Queries, fmt.Sprintf("%.0f", ph.Throughput),
			ms(ph.LatencyP50), ms(ph.LatencyP95), ms(ph.LatencyP99), ms(ph.LatencyMax))
	}
	table.Print(os.Stdout)

	fmt.Printf("ingest: %d applied in %.2fs (%.0f events/s)\n",
		rep.Applied, rep.IngestElapsed.Seconds(), rep.EventsPerSec)
	fmt.Printf("compact: %.2fs; rebalance: %.2fs, %d edges moved, %.0f migrated bytes/s\n",
		rep.CompactElapsed.Seconds(), rep.RebalanceElapsed.Seconds(), rep.Moved, rep.MigrationBytesPerSec)
	fmt.Printf("final: %d edges, rf %.3f, edge balance %.3f, %d compactions, epoch %d\n",
		rep.Stats.NumEdges, rep.Stats.ReplicationFactor, rep.Stats.EdgeBalance,
		rep.Stats.Compactions, rep.Stats.Epoch)
	if p99s, p99c := rep.Steady.LatencyP99, rep.DuringCompaction.LatencyP99; p99s > 0 {
		fmt.Printf("tail cost: compaction p99/steady p99 = %.2fx\n", float64(p99c)/float64(p99s))
	}
}

func loadGraph(path string, scale, ef int, seed int64) (*graph.Graph, error) {
	if path == "" {
		return gen.RMAT(scale, ef, seed), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadBinary(f)
}
