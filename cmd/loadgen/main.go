// Command loadgen measures the online serving cost of edge partitionings.
// It partitions one graph with each requested method, materializes every
// result into a sharded query store (internal/store), drives an identical
// query workload against each store, and prints a table comparing
// throughput, latency percentiles, and — the point of the exercise —
// cross-shard hops per query, the serving-time analogue of the paper's
// replication factor.
//
//	loadgen -methods random,hdrf,dne -parts 8 -rmat-scale 12 -rmat-ef 8 \
//	        -queries 5000 -workers 8 -khop-ratio 0.3 -k 2
//
// A method with a lower replication factor routes fewer mirror fetches, so
// its hops/query column is correspondingly lower for the same workload.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/store"
)

func main() {
	methodList := flag.String("methods", "random,hdrf,dne", "comma-separated partitioning methods to compare")
	parts := flag.Int("parts", 8, "number of shards (partitions)")
	seed := flag.Int64("seed", 1, "partitioner seed")

	graphPath := flag.String("graph", "", "binary graph file (DNE1); overrides -rmat-*")
	rmatScale := flag.Int("rmat-scale", 12, "RMAT scale (2^scale vertices) when no -graph is given")
	rmatEF := flag.Int("rmat-ef", 8, "RMAT edge factor")
	graphSeed := flag.Int64("graph-seed", 1, "RMAT generator seed")

	queries := flag.Int("queries", 5000, "queries per method")
	qps := flag.Float64("qps", 0, "target aggregate QPS (0 = closed loop)")
	workers := flag.Int("workers", 8, "concurrent query workers")
	khopRatio := flag.Float64("khop-ratio", 0.3, "fraction of queries that are k-hop traversals")
	k := flag.Int("k", 2, "traversal depth of k-hop queries")
	workloadSeed := flag.Int64("workload-seed", 7, "query-selection seed (same seed = identical workload)")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall deadline")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	g, err := loadGraph(*graphPath, *rmatScale, *rmatEF, *graphSeed)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	fmt.Printf("graph: %v, %d shards, %d queries/method (%.0f%% khop k=%d, workers=%d",
		g, *parts, *queries, *khopRatio*100, *k, *workers)
	if *qps > 0 {
		fmt.Printf(", %.0f qps", *qps)
	}
	fmt.Println(")")

	table := &bench.Table{Header: []string{
		"method", "rf", "part(s)", "build(s)", "qps", "p50(ms)", "p95(ms)", "p99(ms)", "hops/query", "imbalance",
	}}
	cfg := bench.ServingConfig{
		Queries:   *queries,
		QPS:       *qps,
		Workers:   *workers,
		KHopRatio: *khopRatio,
		KHopK:     *k,
		Seed:      *workloadSeed,
	}
	for _, name := range strings.Split(*methodList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		spec := partition.NewSpec(*parts, *seed)
		pr, spec, err := methods.New(name, spec)
		if err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		res, err := pr.Partition(ctx, g, spec)
		if err != nil {
			log.Fatalf("loadgen: %s: partition: %v", name, err)
		}
		buildStart := time.Now()
		st, err := store.Build(g, res)
		if err != nil {
			log.Fatalf("loadgen: %s: store build: %v", name, err)
		}
		buildElapsed := time.Since(buildStart)
		rep, err := bench.RunServing(ctx, st, cfg)
		if err != nil {
			log.Fatalf("loadgen: %s: workload: %v", name, err)
		}
		table.Add(
			pr.Name(),
			res.Quality.ReplicationFactor,
			res.Stats.PartitionTime(),
			buildElapsed,
			fmt.Sprintf("%.0f", rep.Throughput),
			ms(rep.LatencyP50),
			ms(rep.LatencyP95),
			ms(rep.LatencyP99),
			rep.HopsPerQuery,
			rep.TouchImbalance,
		)
	}
	table.Print(os.Stdout)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)
}

func loadGraph(path string, scale, ef int, seed int64) (*graph.Graph, error) {
	if path == "" {
		return gen.RMAT(scale, ef, seed), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadBinary(f)
}
