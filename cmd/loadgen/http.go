package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/distributedne/dne/internal/bench"
	"github.com/distributedne/dne/internal/graph"
)

// HTTP mode (-url) drives a remote dneserve instead of the in-process
// store: the graph is uploaded once via /api/store/build, then the same
// neighbors/khop mix is fired at /api/query/*. Transient failures — refused
// or reset connections while the server restarts, and 503 load sheds from
// its admission gate — are retried with capped exponential backoff and
// reported separately in the summary instead of counting as query failures.

// httpOptions bundles the -url mode knobs.
type httpOptions struct {
	url      string
	method   string
	parts    int
	seed     int64
	queries  int
	workers  int
	khop     float64
	k        int
	wseed    int64
	attempts int
}

// retryClient wraps http.Client with transient-error retries. A transport
// error (refused, reset, timeout) or a 503 is backed off and retried up to
// maxAttempts times; 503s honor the server's Retry-After when it is shorter
// than the capped backoff. Every retry is counted by cause.
type retryClient struct {
	c           *http.Client
	maxAttempts int
	base, cap   time.Duration

	connRetries atomic.Int64 // transport-level failures retried
	shedRetries atomic.Int64 // 503 load sheds retried
}

func newRetryClient(maxAttempts int) *retryClient {
	if maxAttempts <= 0 {
		maxAttempts = 8
	}
	return &retryClient{
		c:           &http.Client{Timeout: 2 * time.Minute},
		maxAttempts: maxAttempts,
		base:        50 * time.Millisecond,
		cap:         2 * time.Second,
	}
}

// transientErr reports whether a transport error is worth retrying: the
// shapes a restarting or overloaded server produces.
func transientErr(err error) bool {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var op *net.OpError
	if errors.As(err, &op) {
		return true // refused, reset, EPIPE — all connection-level
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// postJSON POSTs body to url with retries and returns the response bytes.
// Non-2xx terminal statuses come back as errors carrying the server's error
// body.
func (rc *retryClient) postJSON(ctx context.Context, url string, body []byte, rng *rand.Rand) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < rc.maxAttempts; attempt++ {
		if attempt > 0 {
			if err := rc.sleep(ctx, attempt, lastErr, rng); err != nil {
				return nil, err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := rc.c.Do(req)
		if err != nil {
			if transientErr(err) && ctx.Err() == nil {
				rc.connRetries.Add(1)
				lastErr = err
				continue
			}
			return nil, err
		}
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			if transientErr(rerr) && ctx.Err() == nil {
				rc.connRetries.Add(1)
				lastErr = rerr
				continue
			}
			return nil, rerr
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			rc.shedRetries.Add(1)
			lastErr = &shedError{retryAfter: resp.Header.Get("Retry-After")}
			continue
		}
		if resp.StatusCode/100 != 2 {
			return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, firstLine(b))
		}
		return b, nil
	}
	return nil, fmt.Errorf("giving up after %d attempts: %w", rc.maxAttempts, lastErr)
}

type shedError struct{ retryAfter string }

func (e *shedError) Error() string { return "server shed the request (503)" }

// sleep backs off before attempt n: exponential with full jitter, capped,
// but never longer than a 503's Retry-After asked for.
func (rc *retryClient) sleep(ctx context.Context, attempt int, cause error, rng *rand.Rand) error {
	d := rc.base << uint(attempt-1)
	if d > rc.cap || d <= 0 {
		d = rc.cap
	}
	d = time.Duration(rng.Int63n(int64(d))) + rc.base/2
	var shed *shedError
	if errors.As(cause, &shed) && shed.retryAfter != "" {
		if sec, err := strconv.Atoi(shed.retryAfter); err == nil && sec >= 0 {
			if ra := time.Duration(sec) * time.Second; ra < d {
				d = ra
			}
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

// runHTTP is the -url entrypoint: upload, query, summarize.
func runHTTP(ctx context.Context, g *graph.Graph, opt httpOptions) {
	rc := newRetryClient(opt.attempts)
	rng := rand.New(rand.NewSource(opt.wseed))

	edges := make([][2]uint32, g.NumEdges())
	for i, e := range g.Edges() {
		edges[i] = [2]uint32{e.U, e.V}
	}
	buildBody, _ := json.Marshal(StoreBuildRequest{
		Method: opt.method, Parts: opt.parts, Seed: opt.seed, Edges: edges,
	})
	fmt.Printf("http: building store on %s (%v, method=%s, %d shards)\n", opt.url, g, opt.method, opt.parts)
	b, err := rc.postJSON(ctx, opt.url+"/api/store/build", buildBody, rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: http build: %v\n", err)
		os.Exit(1)
	}
	var info StoreInfo
	if err := json.Unmarshal(b, &info); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: http build reply: %v\n", err)
		os.Exit(1)
	}

	// The same seeded workload shape as the in-process path: a fixed query
	// list, partitioned across workers.
	type query struct {
		khop   bool
		vertex uint32
	}
	qs := make([]query, opt.queries)
	for i := range qs {
		qs[i] = query{
			khop:   rng.Float64() < opt.khop,
			vertex: uint32(rng.Intn(int(g.NumVertices()))),
		}
	}

	var (
		mu        sync.Mutex
		latencies []time.Duration
		failures  int64
	)
	work := make(chan query, len(qs))
	for _, q := range qs {
		work <- q
	}
	close(work)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opt.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(opt.wseed + int64(w) + 1))
			for q := range work {
				var (
					url  string
					body []byte
				)
				if q.khop {
					url = opt.url + "/api/query/khop"
					body, _ = json.Marshal(KHopRequest{Store: info.Store, Vertex: q.vertex, K: opt.k})
				} else {
					url = opt.url + "/api/query/neighbors"
					body, _ = json.Marshal(NeighborsRequest{Store: info.Store, Vertex: &q.vertex})
				}
				qstart := time.Now()
				if _, err := rc.postJSON(ctx, url, body, wrng); err != nil {
					atomic.AddInt64(&failures, 1)
					continue
				}
				d := time.Since(qstart)
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(q float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	table := &bench.Table{Header: []string{
		"store", "queries", "ok", "qps", "p50(ms)", "p95(ms)", "p99(ms)",
	}}
	table.Add(info.Store, opt.queries, len(latencies),
		fmt.Sprintf("%.0f", float64(len(latencies))/elapsed.Seconds()),
		ms(pct(0.50)), ms(pct(0.95)), ms(pct(0.99)))
	table.Print(os.Stdout)
	// Retries are reported on their own line, deliberately not folded into
	// the failure count: a retried-then-served query is a success.
	fmt.Printf("retries: %d transport, %d shed (503) — transient, not counted as failures\n",
		rc.connRetries.Load(), rc.shedRetries.Load())
	if failures > 0 {
		fmt.Printf("failures: %d queries exhausted %d attempts\n", failures, opt.attempts)
	}
}

// StoreBuildRequest, StoreInfo, NeighborsRequest and KHopRequest mirror
// cmd/dneserve's request/response contract (kept in sync by hand; the server
// rejects unknown fields, so drift fails fast).
type StoreBuildRequest struct {
	Method string      `json:"method"`
	Parts  int         `json:"parts"`
	Seed   int64       `json:"seed,omitempty"`
	Edges  [][2]uint32 `json:"edges,omitempty"`
	Name   string      `json:"name,omitempty"`
}

type StoreInfo struct {
	Store    string `json:"store"`
	NumEdges int64  `json:"numEdges"`
}

type NeighborsRequest struct {
	Store  string  `json:"store"`
	Vertex *uint32 `json:"vertex,omitempty"`
}

type KHopRequest struct {
	Store  string `json:"store"`
	Vertex uint32 `json:"vertex"`
	K      int    `json:"k"`
}
