// Command dnelint is the repository's multichecker: it runs the
// internal/lint analyzer suite (maprange, seedrand, cappedalloc, ctxloop,
// obsname) over package patterns and exits non-zero on any unsuppressed
// finding. It runs in CI next to go vet.
//
// Usage:
//
//	go run ./cmd/dnelint ./...
//	go run ./cmd/dnelint -analyzers maprange,obsname ./internal/graph
//
// Findings are silenced site by site with a justified suppression comment
// on the flagged line or the line above:
//
//	//lint:ordered <why>               (maprange only)
//	//dnelint:ignore <analyzer> <why>  (any analyzer)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/distributedne/dne/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		list      = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dnelint [-analyzers a,b] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var sel []string
	if *analyzers != "" {
		sel = strings.Split(*analyzers, ",")
	}
	suite := lint.ByName(sel)
	if len(suite) == 0 {
		fmt.Fprintf(os.Stderr, "dnelint: no analyzer matches %q\n", *analyzers)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.ExpandPatterns(cwd, patterns)
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fatal(err)
		}
		diags, err := lint.RunAnalyzers(pkg, suite)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			pos := loader.Fset.Position(d.Pos)
			fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "dnelint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnelint:", err)
	os.Exit(2)
}
