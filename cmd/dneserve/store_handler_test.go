package main

import (
	"encoding/json"
	"net/http"
	"sort"
	"testing"
	"time"
)

// ringEdges returns a cycle 0-1-...-n-1-0 plus chords so BFS levels are
// non-trivial.
func ringEdges(n uint32) [][2]uint32 {
	edges := make([][2]uint32, 0, 2*n)
	for i := uint32(0); i < n; i++ {
		edges = append(edges, [2]uint32{i, (i + 1) % n})
	}
	for i := uint32(0); i < n; i += 5 {
		edges = append(edges, [2]uint32{i, (i + n/2) % n})
	}
	return edges
}

func buildTestStore(t *testing.T, h http.Handler, req StoreBuildRequest) StoreInfo {
	t.Helper()
	rec := doJSON(t, h, http.MethodPost, "/api/store/build", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("store build status %d: %s", rec.Code, rec.Body)
	}
	var info StoreInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	return info
}

func TestStoreBuildAndList(t *testing.T) {
	h := newHandler(100_000, time.Minute)
	info := buildTestStore(t, h, StoreBuildRequest{
		Method: "hdrf", Parts: 4, Edges: ringEdges(100),
	})
	if info.Store == "" || info.Method != "HDRF" || info.Parts != 4 {
		t.Fatalf("info %+v", info)
	}
	if info.ReplicationFactor < 1 || len(info.Shards) != 4 {
		t.Fatalf("info %+v", info)
	}
	var totalEdges int64
	for _, s := range info.Shards {
		totalEdges += s.Edges
	}
	if totalEdges != info.NumEdges {
		t.Errorf("shard edges %d != total %d", totalEdges, info.NumEdges)
	}

	rec := doJSON(t, h, http.MethodGet, "/api/store", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("list status %d", rec.Code)
	}
	var list []StoreStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Store != info.Store {
		t.Fatalf("list %+v", list)
	}

	if rec := doJSON(t, h, http.MethodDelete, "/api/store/"+info.Store, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete status %d", rec.Code)
	}
	if rec := doJSON(t, h, http.MethodDelete, "/api/store/"+info.Store, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete status %d", rec.Code)
	}
}

func TestQueryNeighbors(t *testing.T) {
	h := newHandler(100_000, time.Minute)
	info := buildTestStore(t, h, StoreBuildRequest{
		Method: "random", Parts: 4, Seed: 3, Edges: [][2]uint32{{0, 1}, {0, 2}, {0, 3}, {1, 2}},
	})
	v := uint32(0)
	rec := doJSON(t, h, http.MethodPost, "/api/query/neighbors",
		NeighborsRequest{Store: info.Store, Vertex: &v})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp NeighborsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Degree != 3 {
		t.Fatalf("resp %+v", resp)
	}
	if got := resp.Results[0].Neighbors; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("neighbors %v", got)
	}

	rec = doJSON(t, h, http.MethodPost, "/api/query/neighbors",
		NeighborsRequest{Store: info.Store, Vertices: []uint32{1, 2}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("batch resp %+v", resp)
	}
}

// TestQueryKHopMatchesOracle is the serving acceptance check: the endpoint's
// answer equals a BFS oracle computed directly on the request edges.
func TestQueryKHopMatchesOracle(t *testing.T) {
	h := newHandler(100_000, time.Minute)
	edges := ringEdges(60)
	info := buildTestStore(t, h, StoreBuildRequest{Method: "dne", Parts: 5, Seed: 2, Edges: edges})

	// Oracle BFS on the adjacency implied by the request edges.
	adj := map[uint32][]uint32{}
	for _, e := range edges {
		if e[0] == e[1] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	oracle := func(src uint32, k int) map[uint32]int32 {
		dist := map[uint32]int32{src: 0}
		frontier := []uint32{src}
		for d := int32(1); int(d) <= k && len(frontier) > 0; d++ {
			var next []uint32
			for _, u := range frontier {
				for _, w := range adj[u] {
					if _, seen := dist[w]; !seen {
						dist[w] = d
						next = append(next, w)
					}
				}
			}
			frontier = next
		}
		return dist
	}

	for _, tc := range []struct {
		src uint32
		k   int
	}{{0, 0}, {0, 1}, {7, 2}, {30, 3}, {59, 4}} {
		rec := doJSON(t, h, http.MethodPost, "/api/query/khop",
			KHopRequest{Store: info.Store, Vertex: tc.src, K: tc.k})
		if rec.Code != http.StatusOK {
			t.Fatalf("khop(%d,%d) status %d: %s", tc.src, tc.k, rec.Code, rec.Body)
		}
		var resp KHopResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		want := oracle(tc.src, tc.k)
		if resp.Visited != len(want) || len(resp.Vertices) != len(want) {
			t.Fatalf("khop(%d,%d) visited %d, oracle %d", tc.src, tc.k, resp.Visited, len(want))
		}
		for i, v := range resp.Vertices {
			d, ok := want[v]
			if !ok || d != resp.Depths[i] {
				t.Fatalf("khop(%d,%d): vertex %d depth %d, oracle %d (found %v)",
					tc.src, tc.k, v, resp.Depths[i], d, ok)
			}
		}
		// Depth ordering invariant: sorted by (depth, id).
		if !sort.SliceIsSorted(resp.Vertices, func(i, j int) bool {
			if resp.Depths[i] != resp.Depths[j] {
				return resp.Depths[i] < resp.Depths[j]
			}
			return resp.Vertices[i] < resp.Vertices[j]
		}) {
			t.Fatalf("khop(%d,%d) output not depth-ordered", tc.src, tc.k)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	h := newHandler(100_000, time.Minute)
	info := buildTestStore(t, h, StoreBuildRequest{
		Method: "random", Parts: 2, Edges: [][2]uint32{{0, 1}, {1, 2}},
	})
	v := uint32(0)
	cases := []struct {
		name string
		path string
		body any
		code int
	}{
		{"unknown store", "/api/query/neighbors", NeighborsRequest{Store: "nope", Vertex: &v}, http.StatusNotFound},
		{"no vertex", "/api/query/neighbors", NeighborsRequest{Store: info.Store}, http.StatusBadRequest},
		{"both vertex forms", "/api/query/neighbors",
			NeighborsRequest{Store: info.Store, Vertex: &v, Vertices: []uint32{1}}, http.StatusBadRequest},
		{"vertex out of range", "/api/query/neighbors",
			NeighborsRequest{Store: info.Store, Vertices: []uint32{999}}, http.StatusBadRequest},
		{"batch too large", "/api/query/neighbors",
			NeighborsRequest{Store: info.Store, Vertices: make([]uint32, maxNeighborsBatch+1)},
			http.StatusRequestEntityTooLarge},
		{"khop unknown store", "/api/query/khop", KHopRequest{Store: "nope", Vertex: 0, K: 1}, http.StatusNotFound},
		{"khop k too large", "/api/query/khop", KHopRequest{Store: info.Store, Vertex: 0, K: 1000}, http.StatusBadRequest},
		{"khop bad vertex", "/api/query/khop", KHopRequest{Store: info.Store, Vertex: 999, K: 1}, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := doJSON(t, h, http.MethodPost, c.path, c.body)
		if rec.Code != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.code, rec.Body)
		}
	}
}

func TestStoreBuildErrors(t *testing.T) {
	h := newHandler(100, time.Minute)
	cases := []struct {
		name string
		req  StoreBuildRequest
		code int
	}{
		{"no graph", StoreBuildRequest{Method: "dne", Parts: 2}, http.StatusBadRequest},
		{"bad parts", StoreBuildRequest{Method: "dne", Parts: 0, Edges: [][2]uint32{{0, 1}}}, http.StatusBadRequest},
		{"unknown method", StoreBuildRequest{Method: "nope", Parts: 2, Edges: [][2]uint32{{0, 1}}}, http.StatusBadRequest},
		{"bad name", StoreBuildRequest{Method: "random", Parts: 2, Name: "../evil",
			Edges: [][2]uint32{{0, 1}}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := doJSON(t, h, http.MethodPost, "/api/store/build", c.req)
		if rec.Code != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.code, rec.Body)
		}
	}
}

func TestStoreNameCollisionAndCap(t *testing.T) {
	h, errs := newHandlerWithStores(100_000, time.Minute, 2, "")
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	req := StoreBuildRequest{Method: "random", Parts: 2, Name: "mine", Edges: [][2]uint32{{0, 1}, {1, 2}}}
	if rec := doJSON(t, h, http.MethodPost, "/api/store/build", req); rec.Code != http.StatusOK {
		t.Fatalf("first build: %d", rec.Code)
	}
	if rec := doJSON(t, h, http.MethodPost, "/api/store/build", req); rec.Code != http.StatusConflict {
		t.Fatalf("name collision status %d, want 409", rec.Code)
	}
	req.Name = "other"
	if rec := doJSON(t, h, http.MethodPost, "/api/store/build", req); rec.Code != http.StatusOK {
		t.Fatalf("second build: %d", rec.Code)
	}
	req.Name = "overflow"
	if rec := doJSON(t, h, http.MethodPost, "/api/store/build", req); rec.Code != http.StatusConflict {
		t.Fatalf("cap overflow status %d, want 409", rec.Code)
	}
}

// TestStorePersistenceAcrossRestart: a store built with -store-dir set is
// served again by a fresh handler over the same directory — the restart
// path the snapshot format exists for.
func TestStorePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	h1, errs := newHandlerWithStores(100_000, time.Minute, 4, dir)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	info := buildTestStore(t, h1, StoreBuildRequest{
		Method: "hdrf", Parts: 3, Name: "persisted", Edges: ringEdges(50),
	})

	h2, errs := newHandlerWithStores(100_000, time.Minute, 4, dir)
	if len(errs) != 0 {
		t.Fatal(errs)
	}
	rec := doJSON(t, h2, http.MethodGet, "/api/store", nil)
	var list []StoreStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Store != "persisted" || !list[0].Restored {
		t.Fatalf("restored list %+v", list)
	}
	if list[0].Method != "HDRF" {
		t.Errorf("restored method %q, want HDRF (sidecar lost)", list[0].Method)
	}
	if list[0].NumEdges != info.NumEdges || list[0].ReplicationFactor != info.ReplicationFactor {
		t.Errorf("restored shape %+v != built %+v", list[0].StoreInfo, info)
	}

	// Queries against the restored store answer identically.
	v := uint32(10)
	recA := doJSON(t, h1, http.MethodPost, "/api/query/neighbors", NeighborsRequest{Store: "persisted", Vertex: &v})
	recB := doJSON(t, h2, http.MethodPost, "/api/query/neighbors", NeighborsRequest{Store: "persisted", Vertex: &v})
	if recA.Code != http.StatusOK || recB.Code != http.StatusOK {
		t.Fatalf("query status %d / %d", recA.Code, recB.Code)
	}
	var a, b NeighborsResponse
	if err := json.Unmarshal(recA.Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(recB.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if len(a.Results) != 1 || len(b.Results) != 1 || a.Results[0].Degree != b.Results[0].Degree {
		t.Fatalf("restored answers diverge: %+v vs %+v", a, b)
	}
	for i := range a.Results[0].Neighbors {
		if a.Results[0].Neighbors[i] != b.Results[0].Neighbors[i] {
			t.Fatalf("restored neighbors diverge at %d", i)
		}
	}

	// Deleting on the restored server removes the snapshot files too.
	if rec := doJSON(t, h2, http.MethodDelete, "/api/store/persisted", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete status %d", rec.Code)
	}
	h3, _ := newHandlerWithStores(100_000, time.Minute, 4, dir)
	rec = doJSON(t, h3, http.MethodGet, "/api/store", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("deleted store came back: %+v", list)
	}
}
