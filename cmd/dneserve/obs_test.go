package main

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndpoint drives a partition, a store build, queries, and a
// live ingest through the handler, then checks /metrics exposes the
// subsystem families obs-smoke asserts on.
func TestMetricsEndpoint(t *testing.T) {
	h, lsvc, _, errs := newHandlerWithLive(100_000, time.Minute, 4, "", t.TempDir(), admissionLimits{})
	if len(errs) > 0 {
		t.Fatalf("restore errors: %v", errs)
	}
	defer lsvc.close()

	if rec := doJSON(t, h, http.MethodPost, "/api/partition",
		Request{Method: "dne", Parts: 2, RMAT: &RMATSpec{Scale: 6, EF: 4, Seed: 1}}); rec.Code != http.StatusOK {
		t.Fatalf("partition: status %d: %s", rec.Code, rec.Body)
	}
	if rec := doJSON(t, h, http.MethodPost, "/api/store/build",
		StoreBuildRequest{Method: "dne", Parts: 2, Name: "m",
			RMAT: &RMATSpec{Scale: 6, EF: 4, Seed: 1}}); rec.Code != http.StatusOK {
		t.Fatalf("build: status %d: %s", rec.Code, rec.Body)
	}
	v := uint32(0)
	if rec := doJSON(t, h, http.MethodPost, "/api/query/neighbors",
		NeighborsRequest{Store: "m", Vertex: &v}); rec.Code != http.StatusOK {
		t.Fatalf("neighbors: status %d: %s", rec.Code, rec.Body)
	}
	if rec := doJSON(t, h, http.MethodPost, "/api/live/ingest",
		LiveIngestRequest{Parts: 2, Edges: [][2]uint32{{0, 1}, {1, 2}, {2, 0}}}); rec.Code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", rec.Code, rec.Body)
	}

	rec := doJSON(t, h, http.MethodGet, "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE dne_store_query_duration_seconds histogram",
		`dne_store_query_duration_seconds_count{kind="neighbors"} 1`,
		"dne_store_shard_touches_total",
		`dne_store_shard_touches{shard="0",store="m"}`,
		"dne_live_edges 3",
		"dne_live_apply_duration_seconds_count 1",
		"dne_http_request_duration_seconds",
		`route="/api/query/neighbors"`,
		"dne_go_goroutines",
		"dne_process_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The partition and build runs must have left spans in the ring.
	trec := doJSON(t, h, http.MethodGet, "/debug/trace", nil)
	if trec.Code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", trec.Code)
	}
	var doc struct {
		Spans []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(trec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("trace dump does not parse: %v", err)
	}
	cats := map[string]bool{}
	for _, s := range doc.Spans {
		cats[s.Cat] = true
	}
	if !cats["partition"] || !cats["store"] {
		t.Fatalf("trace ring missing partition/store spans: %+v", doc.Spans)
	}
}

func TestRouteLabelBoundsCardinality(t *testing.T) {
	cases := map[string]string{
		"/api/partition":        "/api/partition",
		"/api/store/s1":         "/api/store/{id}",
		"/api/store/../../etc":  "/api/store/{id}",
		"/totally/unknown/path": "other",
		"/healthz":              "/healthz",
	}
	for path, want := range cases {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
