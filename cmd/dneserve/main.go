// Command dneserve exposes the repository's edge partitioners as an HTTP
// service — the shape a downstream system would embed the library behind.
//
//	dneserve -addr :8080
//
// Endpoints:
//
//	GET    /healthz              liveness probe
//	GET    /api/methods          JSON list of method names
//	POST   /api/partition        partition a graph (JSON; see Request)
//	POST   /api/store/build      partition a graph and materialize a sharded
//	                             query store (JSON; see StoreBuildRequest)
//	GET    /api/store            list resident stores with serving metrics
//	DELETE /api/store/{id}       drop a store
//	POST   /api/query/neighbors  point lookups against a store
//	POST   /api/query/khop       k-hop BFS fanned out across the shards
//	POST   /api/live/ingest      append edge insertions/deletions to the
//	                             live graph, placed incrementally
//	GET    /api/live/stats       live-graph counters (?checksum=1 digests
//	                             the full live edge set)
//	POST   /api/live/compact     fold the overlay into a fresh base, with
//	                             an optional bounded rebalance first
//	POST   /api/live/query/neighbors  point lookups against the live epoch
//	POST   /api/live/query/khop       k-hop BFS against the live epoch
//
// A request supplies either explicit edges or a synthetic-generator spec:
//
//	{"method":"dne","parts":8,"edges":[[0,1],[1,2]]}
//	{"method":"hdrf","parts":16,"rmat":{"scale":14,"ef":16,"seed":7}}
//
// The response carries the per-edge owners (aligned with the canonical,
// deduplicated edge order returned in "edges" when "echoEdges" is set) plus
// the quality metrics of §2 and §7.6.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxEdges := flag.Int64("max-edges", 5_000_000, "reject requests beyond this edge count")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request partitioning deadline (0 = none)")
	maxStores := flag.Int("max-stores", defaultMaxStores, "maximum resident query stores")
	storeDir := flag.String("store-dir", "", "persist store snapshots here and restore them at startup")
	liveDir := flag.String("live-dir", "", "root the live graph here (logs + placement state) and reopen it at startup")
	flag.Parse()

	handler, lsvc, restoreErrs := newHandlerWithLive(*maxEdges, *timeout, *maxStores, *storeDir, *liveDir)
	for _, err := range restoreErrs {
		log.Printf("dneserve: restore: %v", err)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Partitioning runs under its own deadline (-timeout); these bound
		// slow clients on the read/write side.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGINT/SIGTERM drain the server, then seal the live graph's logs and
	// checkpoint its placement state, so a restart with the same -live-dir
	// resumes exactly (the logs replay to the identical graph).
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("dneserve: shutdown: %v", err)
		}
	}()

	log.Printf("dneserve: listening on %s (request timeout %v)", *addr, *timeout)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		lsvc.close()
		log.Fatal(err)
	}
	if err := lsvc.close(); err != nil {
		log.Fatalf("dneserve: sealing live graph: %v", err)
	}
}
