// Command dneserve exposes the repository's edge partitioners as an HTTP
// service — the shape a downstream system would embed the library behind.
//
//	dneserve -addr :8080
//
// Endpoints:
//
//	GET  /healthz            liveness probe
//	GET  /api/methods        JSON list of method names
//	POST /api/partition      partition a graph (JSON; see Request)
//
// A request supplies either explicit edges or a synthetic-generator spec:
//
//	{"method":"dne","parts":8,"edges":[[0,1],[1,2]]}
//	{"method":"hdrf","parts":16,"rmat":{"scale":14,"ef":16,"seed":7}}
//
// The response carries the per-edge owners (aligned with the canonical,
// deduplicated edge order returned in "edges" when "echoEdges" is set) plus
// the quality metrics of §2 and §7.6.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxEdges := flag.Int64("max-edges", 5_000_000, "reject requests beyond this edge count")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request partitioning deadline (0 = none)")
	flag.Parse()

	srv := &http.Server{
		Addr:    *addr,
		Handler: newHandler(*maxEdges, *timeout),
		// Partitioning runs under its own deadline (-timeout); these bound
		// slow clients on the read/write side.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("dneserve: listening on %s (request timeout %v)", *addr, *timeout)
	log.Fatal(srv.ListenAndServe())
}
