// Command dneserve exposes the repository's edge partitioners as an HTTP
// service — the shape a downstream system would embed the library behind.
//
//	dneserve -addr :8080
//
// Endpoints:
//
//	GET    /healthz              liveness probe
//	GET    /api/methods          JSON list of method names
//	POST   /api/partition        partition a graph (JSON; see Request)
//	POST   /api/store/build      partition a graph and materialize a sharded
//	                             query store (JSON; see StoreBuildRequest)
//	GET    /api/store            list resident stores with serving metrics
//	DELETE /api/store/{id}       drop a store
//	POST   /api/query/neighbors  point lookups against a store
//	POST   /api/query/khop       k-hop BFS fanned out across the shards
//	POST   /api/live/ingest      append edge insertions/deletions to the
//	                             live graph, placed incrementally
//	GET    /api/live/stats       live-graph counters (?checksum=1 digests
//	                             the full live edge set)
//	POST   /api/live/compact     fold the overlay into a fresh base, with
//	                             an optional bounded rebalance first
//	POST   /api/live/query/neighbors  point lookups against the live epoch
//	POST   /api/live/query/khop       k-hop BFS against the live epoch
//	GET    /metrics              Prometheus text exposition of every
//	                             subsystem's metric families
//	GET    /debug/trace          recent phase spans (?format=chrome for
//	                             chrome://tracing / Perfetto)
//
// With -debug-addr set, a second listener serves net/http/pprof plus the
// same /metrics and /debug/trace. Every request is logged as one JSON line
// (method, path, status, duration, bytes) unless -quiet is set.
//
// A request supplies either explicit edges or a synthetic-generator spec:
//
//	{"method":"dne","parts":8,"edges":[[0,1],[1,2]]}
//	{"method":"hdrf","parts":16,"rmat":{"scale":14,"ef":16,"seed":7}}
//
// The response carries the per-edge owners (aligned with the canonical,
// deduplicated edge order returned in "edges" when "echoEdges" is set) plus
// the quality metrics of §2 and §7.6.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxEdges := flag.Int64("max-edges", 5_000_000, "reject requests beyond this edge count")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request partitioning deadline (0 = none)")
	maxStores := flag.Int("max-stores", defaultMaxStores, "maximum resident query stores")
	storeDir := flag.String("store-dir", "", "persist store snapshots here and restore them at startup")
	liveDir := flag.String("live-dir", "", "root the live graph here (logs + placement state) and reopen it at startup")
	debugAddr := flag.String("debug-addr", "", "serve pprof, /metrics and /debug/trace on this extra listener (empty = off)")
	quiet := flag.Bool("quiet", false, "suppress the structured access log")
	maxInflight := flag.Int("max-inflight", 0, "concurrently executing heavy requests (0 = 2×GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "heavy requests queued beyond -max-inflight before shedding 503s (0 = 4×inflight)")
	queueWait := flag.Duration("queue-wait", 0, "longest a queued request waits for a slot before a 503 (0 = 2s)")
	flag.Parse()

	adm := admissionLimits{MaxInflight: *maxInflight, MaxQueue: *maxQueue, MaxWait: *queueWait}
	handler, lsvc, so, restoreErrs := newHandlerWithLive(*maxEdges, *timeout, *maxStores, *storeDir, *liveDir, adm)
	for _, err := range restoreErrs {
		log.Printf("dneserve: restore: %v", err)
	}
	if !*quiet {
		// One JSON line per request: method, path, status, duration, bytes.
		so.accessLog = log.New(os.Stderr, "", 0)
	}
	if *debugAddr != "" {
		go func() {
			if err := http.ListenAndServe(*debugAddr, debugMux(so)); err != nil {
				log.Printf("dneserve: debug listener: %v", err)
			}
		}()
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Partitioning runs under its own deadline (-timeout); these bound
		// slow clients on the read/write side.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// SIGINT/SIGTERM drain the server, then seal the live graph's logs and
	// checkpoint its placement state, so a restart with the same -live-dir
	// resumes exactly (the logs replay to the identical graph).
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("dneserve: shutdown: %v", err)
		}
	}()

	log.Printf("dneserve: listening on %s (request timeout %v)", *addr, *timeout)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		lsvc.close()
		log.Fatal(err)
	}
	if err := lsvc.close(); err != nil {
		log.Fatalf("dneserve: sealing live graph: %v", err)
	}
}

// debugMux is the -debug-addr surface: the runtime profiler plus the same
// metrics and trace endpoints as the serving listener, so operators can
// keep the debug port firewalled separately from the API.
func debugMux(so *serverObs) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", so.serveMetrics)
	mux.HandleFunc("/debug/trace", so.serveTrace)
	return mux
}
