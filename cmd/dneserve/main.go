// Command dneserve exposes the repository's edge partitioners as an HTTP
// service — the shape a downstream system would embed the library behind.
//
//	dneserve -addr :8080
//
// Endpoints:
//
//	GET    /healthz              liveness probe
//	GET    /api/methods          JSON list of method names
//	POST   /api/partition        partition a graph (JSON; see Request)
//	POST   /api/store/build      partition a graph and materialize a sharded
//	                             query store (JSON; see StoreBuildRequest)
//	GET    /api/store            list resident stores with serving metrics
//	DELETE /api/store/{id}       drop a store
//	POST   /api/query/neighbors  point lookups against a store
//	POST   /api/query/khop       k-hop BFS fanned out across the shards
//
// A request supplies either explicit edges or a synthetic-generator spec:
//
//	{"method":"dne","parts":8,"edges":[[0,1],[1,2]]}
//	{"method":"hdrf","parts":16,"rmat":{"scale":14,"ef":16,"seed":7}}
//
// The response carries the per-edge owners (aligned with the canonical,
// deduplicated edge order returned in "edges" when "echoEdges" is set) plus
// the quality metrics of §2 and §7.6.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxEdges := flag.Int64("max-edges", 5_000_000, "reject requests beyond this edge count")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request partitioning deadline (0 = none)")
	maxStores := flag.Int("max-stores", defaultMaxStores, "maximum resident query stores")
	storeDir := flag.String("store-dir", "", "persist store snapshots here and restore them at startup")
	flag.Parse()

	handler, restoreErrs := newHandlerWithStores(*maxEdges, *timeout, *maxStores, *storeDir)
	for _, err := range restoreErrs {
		log.Printf("dneserve: restoring store snapshot: %v", err)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Partitioning runs under its own deadline (-timeout); these bound
		// slow clients on the read/write side.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("dneserve: listening on %s (request timeout %v)", *addr, *timeout)
	log.Fatal(srv.ListenAndServe())
}
