package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/distributedne/dne/internal/dynpart"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/live"
	"github.com/distributedne/dne/internal/obs"
)

// The live endpoints expose internal/live over HTTP: one dynamic graph per
// server, rooted at -live-dir (an ephemeral temp directory when unset).
// /api/live/ingest appends edge insertions and deletions, placing each new
// edge incrementally; queries run against the epoch published by the last
// batch, so a traversal in flight never observes a partial batch —
// ingestion, compaction and rebalancing proceed underneath it.

// liveService guards the server's single live graph. Mutations serialize
// inside Live itself; this lock only covers lazy opening.
type liveService struct {
	mu  sync.Mutex
	dir string // "" = create a temp dir at first ingest
	lv  *live.Live

	// reg, when set, receives the live graph's metric families as soon as
	// the graph is opened; latNeighbors/latKHop time the epoch query paths
	// (which bypass the store's own instrumentation). All nil-safe.
	reg          *obs.Registry
	latNeighbors *obs.Histogram
	latKHop      *obs.Histogram
}

func newLiveService(dir string) *liveService {
	return &liveService{dir: dir}
}

// restore reopens an existing live directory at startup so the server comes
// back serving the graph it held. A fresh (or unset) directory is not an
// error — the graph is created lazily by the first ingest.
func (ls *liveService) restore() []error {
	if ls.dir == "" {
		return nil
	}
	_, serr := os.Stat(filepath.Join(ls.dir, "state.dls"))
	_, lerr := os.Stat(filepath.Join(ls.dir, "part-0000.esh"))
	if os.IsNotExist(serr) && os.IsNotExist(lerr) {
		return nil
	}
	lv, err := live.Open(ls.dir, live.Config{})
	if err != nil {
		return []error{fmt.Errorf("live: restoring %s: %w", ls.dir, err)}
	}
	if rec := lv.Recovery(); rec.Recovered() {
		log.Printf("dneserve: live crash recovery in %s: %s", ls.dir, rec)
	}
	lv.RegisterMetrics(ls.reg)
	ls.lv = lv
	return nil
}

// open returns the live graph, creating it on first use. parts is only
// consulted when the graph does not exist yet; afterwards a non-zero
// mismatch is rejected so clients can't silently ingest into a different
// partitioning than they asked for.
func (ls *liveService) open(parts int, seed int64) (*live.Live, int, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.lv != nil {
		if parts != 0 && parts != ls.lv.State().NumParts() {
			return nil, http.StatusConflict,
				fmt.Errorf("live graph has %d partitions, request asks %d", ls.lv.State().NumParts(), parts)
		}
		return ls.lv, http.StatusOK, nil
	}
	if parts <= 0 {
		return nil, http.StatusBadRequest,
			fmt.Errorf("no live graph yet; first ingest must set parts > 0")
	}
	if ls.dir == "" {
		dir, err := os.MkdirTemp("", "dneserve-live-")
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		ls.dir = dir
	}
	lv, err := live.Open(ls.dir, live.Config{NumParts: parts, Seed: seed})
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	lv.RegisterMetrics(ls.reg)
	ls.lv = lv
	return lv, http.StatusOK, nil
}

// close checkpoints and seals the live graph; a later process (or handler)
// can then adopt the directory. Safe to call with no graph open.
func (ls *liveService) close() error {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.lv == nil {
		return nil
	}
	err := ls.lv.Close()
	ls.lv = nil
	return err
}

// get returns the live graph or a 404-shaped error when none exists yet.
func (ls *liveService) get() (*live.Live, int, error) {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	if ls.lv == nil {
		return nil, http.StatusNotFound, fmt.Errorf("no live graph (POST /api/live/ingest first)")
	}
	return ls.lv, http.StatusOK, nil
}

// LiveIngestRequest is one /api/live/ingest batch. Edges are inserted, then
// Deletes removed, in order. Parts and Seed configure the graph on the
// first batch and must agree (or be zero) afterwards.
type LiveIngestRequest struct {
	Parts   int         `json:"parts,omitempty"`
	Seed    int64       `json:"seed,omitempty"`
	Edges   [][2]uint32 `json:"edges,omitempty"`
	Deletes [][2]uint32 `json:"deletes,omitempty"`
}

// LiveIngestResponse reports what one batch changed.
type LiveIngestResponse struct {
	Applied   int        `json:"applied"`
	ElapsedMS float64    `json:"elapsedMs"`
	Stats     live.Stats `json:"stats"`
}

// LiveStatsResponse is /api/live/stats: the subsystem counters, plus the
// full-graph checksum when ?checksum=1 (it walks every live edge, so it is
// opt-in).
type LiveStatsResponse struct {
	Dir      string     `json:"dir"`
	Stats    live.Stats `json:"stats"`
	Checksum string     `json:"checksum,omitempty"`
}

// LiveCompactRequest tunes /api/live/compact: a positive RebalanceBudget
// migrates up to that many edges off overloaded partitions first.
type LiveCompactRequest struct {
	RebalanceBudget int `json:"rebalanceBudget,omitempty"`
}

// LiveCompactResponse reports the maintenance pass.
type LiveCompactResponse struct {
	Moved     int        `json:"moved"`
	ElapsedMS float64    `json:"elapsedMs"`
	Stats     live.Stats `json:"stats"`
}

// LiveNeighborsRequest queries one vertex or a batch against the current
// epoch.
type LiveNeighborsRequest struct {
	Vertex   *uint32  `json:"vertex,omitempty"`
	Vertices []uint32 `json:"vertices,omitempty"`
}

// LiveNeighborsResponse carries the answers plus the epoch that served
// them.
type LiveNeighborsResponse struct {
	Epoch     uint64            `json:"epoch"`
	Results   []VertexNeighbors `json:"results"`
	ElapsedMS float64           `json:"elapsedMs"`
}

// LiveKHopRequest asks for a k-hop traversal against the current epoch.
type LiveKHopRequest struct {
	Vertex uint32 `json:"vertex"`
	K      int    `json:"k"`
}

// LiveKHopResponse mirrors KHopResponse with the serving epoch in place of
// a store id.
type LiveKHopResponse struct {
	Epoch          uint64   `json:"epoch"`
	Source         uint32   `json:"source"`
	K              int      `json:"k"`
	Visited        int      `json:"visited"`
	Vertices       []uint32 `json:"vertices"`
	Depths         []int32  `json:"depths"`
	LevelSizes     []int64  `json:"levelSizes"`
	CrossShardHops int64    `json:"crossShardHops"`
	ShardTasks     int64    `json:"shardTasks"`
	ElapsedMS      float64  `json:"elapsedMs"`
}

// register wires the live endpoints onto mux.
func (ls *liveService) register(mux *http.ServeMux, maxEdges int64, reqTimeout time.Duration) {
	mux.HandleFunc("POST /api/live/ingest", func(w http.ResponseWriter, r *http.Request) {
		var req LiveIngestRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
			return
		}
		if n := int64(len(req.Edges) + len(req.Deletes)); n > maxEdges {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("batch has %d events, server cap is %d", n, maxEdges)})
			return
		}
		lv, status, err := ls.open(req.Parts, req.Seed)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		events := make([]dynpart.Event, 0, len(req.Edges)+len(req.Deletes))
		for _, e := range req.Edges {
			events = append(events, dynpart.Event{Op: dynpart.Add, Edge: graph.Edge{U: graph.Vertex(e[0]), V: graph.Vertex(e[1])}})
		}
		for _, e := range req.Deletes {
			events = append(events, dynpart.Event{Op: dynpart.Remove, Edge: graph.Edge{U: graph.Vertex(e[0]), V: graph.Vertex(e[1])}})
		}
		start := time.Now()
		applied, err := lv.Apply(events)
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, LiveIngestResponse{
			Applied:   applied,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
			Stats:     lv.Stats(),
		})
	})
	mux.HandleFunc("GET /api/live/stats", func(w http.ResponseWriter, r *http.Request) {
		lv, status, err := ls.get()
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		resp := LiveStatsResponse{Dir: ls.dir, Stats: lv.Stats()}
		if r.URL.Query().Get("checksum") == "1" {
			resp.Checksum = fmt.Sprintf("%#x", lv.Checksum())
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /api/live/compact", func(w http.ResponseWriter, r *http.Request) {
		var req LiveCompactRequest
		if r.ContentLength != 0 {
			dec := json.NewDecoder(r.Body)
			dec.DisallowUnknownFields()
			if err := dec.Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
				return
			}
		}
		lv, status, err := ls.get()
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		start := time.Now()
		moved := 0
		if req.RebalanceBudget > 0 {
			if moved, err = lv.Rebalance(req.RebalanceBudget); err != nil {
				writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
				return
			}
		}
		if err := lv.Compact(); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, LiveCompactResponse{
			Moved:     moved,
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
			Stats:     lv.Stats(),
		})
	})
	mux.HandleFunc("POST /api/live/query/neighbors", func(w http.ResponseWriter, r *http.Request) {
		var req LiveNeighborsRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
			return
		}
		lv, status, err := ls.get()
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		resp, status, err := ls.serveLiveNeighbors(lv, &req)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /api/live/query/khop", func(w http.ResponseWriter, r *http.Request) {
		var req LiveKHopRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
			return
		}
		lv, status, err := ls.get()
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		ctx := r.Context()
		if reqTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, reqTimeout)
			defer cancel()
		}
		resp, status, err := ls.serveLiveKHop(ctx, lv, &req)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

func (ls *liveService) serveLiveNeighbors(lv *live.Live, req *LiveNeighborsRequest) (*LiveNeighborsResponse, int, error) {
	var vs []uint32
	switch {
	case req.Vertex != nil && len(req.Vertices) > 0:
		return nil, http.StatusBadRequest, fmt.Errorf("supply vertex or vertices, not both")
	case req.Vertex != nil:
		vs = []uint32{*req.Vertex}
	case len(req.Vertices) > maxNeighborsBatch:
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d vertices exceed batch cap %d", len(req.Vertices), maxNeighborsBatch)
	case len(req.Vertices) > 0:
		vs = req.Vertices
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("supply vertex or vertices")
	}
	// Pin one epoch for the whole batch: every answer is consistent with the
	// same snapshot even while ingestion continues.
	ep := lv.Epoch()
	start := time.Now()
	defer func() { ls.latNeighbors.Observe(int64(time.Since(start))) }()
	resp := &LiveNeighborsResponse{Epoch: ep.Seq(), Results: make([]VertexNeighbors, 0, len(vs))}
	for _, v := range vs {
		ns, err := ep.Neighbors(graph.Vertex(v))
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		out := make([]uint32, len(ns))
		for i, n := range ns {
			out[i] = uint32(n)
		}
		resp.Results = append(resp.Results, VertexNeighbors{
			Vertex: v, Degree: int64(len(ns)), Neighbors: out,
		})
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return resp, http.StatusOK, nil
}

func (ls *liveService) serveLiveKHop(ctx context.Context, lv *live.Live, req *LiveKHopRequest) (*LiveKHopResponse, int, error) {
	if req.K < 0 || req.K > maxKHop {
		return nil, http.StatusBadRequest, fmt.Errorf("k %d outside [0,%d]", req.K, maxKHop)
	}
	ep := lv.Epoch()
	start := time.Now()
	defer func() { ls.latKHop.Observe(int64(time.Since(start))) }()
	res, err := ep.KHop(ctx, graph.Vertex(req.Vertex), req.K)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, http.StatusGatewayTimeout, err
		}
		return nil, http.StatusBadRequest, err
	}
	resp := &LiveKHopResponse{
		Epoch:          ep.Seq(),
		Source:         req.Vertex,
		K:              req.K,
		Visited:        len(res.Vertices),
		Vertices:       make([]uint32, len(res.Vertices)),
		Depths:         res.Depths,
		LevelSizes:     res.LevelSizes,
		CrossShardHops: res.CrossShardHops,
		ShardTasks:     res.ShardTasks,
		ElapsedMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, v := range res.Vertices {
		resp.Vertices[i] = uint32(v)
	}
	return resp, http.StatusOK, nil
}
