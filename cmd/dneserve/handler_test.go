package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/distributedne/dne/internal/methods"
)

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestHealthz(t *testing.T) {
	rec := doJSON(t, newHandler(1000, time.Minute), http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestMethodsList(t *testing.T) {
	rec := doJSON(t, newHandler(1000, time.Minute), http.MethodGet, "/api/methods", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var ds []methods.Descriptor
	if err := json.Unmarshal(rec.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"dne": true, "hdrf": true, "fennel": true, "random": true}
	for _, d := range ds {
		delete(want, d.Name)
		if d.Summary == "" {
			t.Errorf("method %s: descriptor without summary", d.Name)
		}
	}
	if len(want) > 0 {
		t.Errorf("missing methods: %v", want)
	}
}

func TestPartitionExplicitEdges(t *testing.T) {
	req := Request{
		Method: "dne", Parts: 2, EchoEdges: true,
		Edges: [][2]uint32{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {1, 3}},
	}
	rec := doJSON(t, newHandler(1000, time.Minute), http.MethodPost, "/api/partition", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.NumEdges != 6 || len(resp.Owners) != 6 || len(resp.Edges) != 6 {
		t.Fatalf("shape: %+v", resp)
	}
	for i, o := range resp.Owners {
		if o < 0 || o >= 2 {
			t.Fatalf("owner[%d] = %d", i, o)
		}
	}
	if resp.Quality.ReplicationFactor < 1 {
		t.Errorf("RF %v", resp.Quality.ReplicationFactor)
	}
	if resp.Stats.Iterations <= 0 {
		t.Errorf("dne response missing iterations: %+v", resp)
	}
}

func TestPartitionRMATSpec(t *testing.T) {
	req := Request{Method: "hdrf", Parts: 8, RMAT: &RMATSpec{Scale: 10, EF: 8, Seed: 3}}
	rec := doJSON(t, newHandler(1_000_000, time.Minute), http.MethodPost, "/api/partition", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Method != "HDRF" || int64(len(resp.Owners)) != resp.NumEdges {
		t.Fatalf("resp %+v", resp)
	}
	if resp.Edges != nil {
		t.Error("edges echoed without echoEdges")
	}
}

func TestPartitionDeterministicForSeed(t *testing.T) {
	req := Request{Method: "dne", Parts: 4, Seed: 9, RMAT: &RMATSpec{Scale: 9, EF: 8, Seed: 3}}
	h := newHandler(1_000_000, time.Minute)
	var a, b Response
	if err := json.Unmarshal(doJSON(t, h, http.MethodPost, "/api/partition", req).Body.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(doJSON(t, h, http.MethodPost, "/api/partition", req).Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Owners {
		if a.Owners[i] != b.Owners[i] {
			t.Fatalf("owners differ at %d", i)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	h := newHandler(100, time.Minute)
	cases := []struct {
		name string
		req  Request
		code int
	}{
		{"no graph", Request{Method: "dne", Parts: 4}, http.StatusBadRequest},
		{"both inputs", Request{Method: "dne", Parts: 4,
			Edges: [][2]uint32{{0, 1}}, RMAT: &RMATSpec{Scale: 5, EF: 2}}, http.StatusBadRequest},
		{"bad parts", Request{Method: "dne", Parts: 0, Edges: [][2]uint32{{0, 1}}}, http.StatusBadRequest},
		{"unknown method", Request{Method: "nope", Parts: 2, Edges: [][2]uint32{{0, 1}}}, http.StatusBadRequest},
		{"self loops only", Request{Method: "dne", Parts: 2, Edges: [][2]uint32{{1, 1}}}, http.StatusBadRequest},
		{"rmat too big", Request{Method: "dne", Parts: 2, RMAT: &RMATSpec{Scale: 20, EF: 64}}, http.StatusBadRequest},
		{"rmat bad scale", Request{Method: "dne", Parts: 2, RMAT: &RMATSpec{Scale: 0, EF: 2}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := doJSON(t, h, http.MethodPost, "/api/partition", c.req)
		if rec.Code != c.code {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.code, rec.Body)
		}
	}
}

func TestPartitionRejectsUnknownFields(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/api/partition",
		bytes.NewBufferString(`{"method":"dne","parts":2,"bogus":1}`))
	rec := httptest.NewRecorder()
	newHandler(100, time.Minute).ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d", rec.Code)
	}
}

func TestPartitionEdgeCap(t *testing.T) {
	edges := make([][2]uint32, 50)
	for i := range edges {
		edges[i] = [2]uint32{uint32(i), uint32(i + 1)}
	}
	rec := doJSON(t, newHandler(10, time.Minute), http.MethodPost, "/api/partition",
		Request{Method: "random", Parts: 2, Edges: edges})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (cap)", rec.Code)
	}
}

func TestAllRegisteredMethodsServable(t *testing.T) {
	// Every registry name must partition a small graph through the service.
	h := newHandler(100_000, time.Minute)
	for _, name := range methods.Names() {
		req := Request{Method: name, Parts: 4, RMAT: &RMATSpec{Scale: 8, EF: 4, Seed: 1}}
		rec := doJSON(t, h, http.MethodPost, "/api/partition", req)
		if rec.Code != http.StatusOK {
			t.Errorf("method %s: status %d (%s)", name, rec.Code, rec.Body)
		}
	}
}

func TestParamsPassthrough(t *testing.T) {
	req := Request{
		Method: "dne", Parts: 4, RMAT: &RMATSpec{Scale: 9, EF: 8, Seed: 3},
		Params: map[string]any{"lambda": 1.0, "alpha": 1.3},
	}
	rec := doJSON(t, newHandler(1_000_000, time.Minute), http.MethodPost, "/api/partition", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	// λ=1 collapses the run to very few supersteps; the param must have
	// reached the algorithm.
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Iterations <= 0 || resp.Stats.Iterations > 30 {
		t.Errorf("lambda=1 run reported %d iterations; param not applied?", resp.Stats.Iterations)
	}
}

func TestUnknownParamReturns400WithDeclaredParams(t *testing.T) {
	req := Request{
		Method: "fennel", Parts: 4, RMAT: &RMATSpec{Scale: 8, EF: 4, Seed: 1},
		Params: map[string]any{"bogus": 3},
	}
	rec := doJSON(t, newHandler(1_000_000, time.Minute), http.MethodPost, "/api/partition", req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", rec.Code, rec.Body)
	}
	var body struct {
		Error          string              `json:"error"`
		Method         string              `json:"method"`
		DeclaredParams []methods.ParamSpec `json:"declaredParams"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Method != "fennel" || len(body.DeclaredParams) == 0 {
		t.Fatalf("error body lacks declared params: %s", rec.Body)
	}
	if body.DeclaredParams[0].Name != "gamma" {
		t.Errorf("declared params = %+v, want gamma", body.DeclaredParams)
	}
}

func TestOutOfBoundsParamReturns400(t *testing.T) {
	req := Request{
		Method: "dne", Parts: 4, Edges: [][2]uint32{{0, 1}, {1, 2}},
		Params: map[string]any{"alpha": 0.2},
	}
	rec := doJSON(t, newHandler(1000, time.Minute), http.MethodPost, "/api/partition", req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", rec.Code, rec.Body)
	}
}

func TestRequestTimeoutReturns504(t *testing.T) {
	req := Request{Method: "dne", Parts: 8, RMAT: &RMATSpec{Scale: 12, EF: 16, Seed: 3}}
	rec := doJSON(t, newHandler(1_000_000, time.Nanosecond), http.MethodPost, "/api/partition", req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", rec.Code, rec.Body)
	}
}
