package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/obs"
	"github.com/distributedne/dne/internal/partition"
	"github.com/distributedne/dne/internal/store"
)

// The store endpoints turn the partitioning service into an online serving
// layer: /api/store/build partitions a graph and materializes the result
// into a sharded store; /api/query/* serve point and traversal queries
// against it, reporting the cross-shard fan-out each query paid. With
// -store-dir set, every built store is snapshotted to disk and restored on
// restart, so a server comes back without re-partitioning.

// defaultMaxStores bounds how many stores a server holds at once.
const defaultMaxStores = 16

// maxKHop bounds traversal depth per query.
const maxKHop = 32

// maxNeighborsBatch bounds the vertices of one /api/query/neighbors call.
const maxNeighborsBatch = 1024

// snapExt is the snapshot file extension under -store-dir.
const snapExt = ".dns"

var storeNameRE = regexp.MustCompile(`^[a-zA-Z0-9_-]{1,64}$`)

// storeEntry is one resident store with its build provenance.
type storeEntry struct {
	info StoreInfo
	st   *store.Store
}

// storeRegistry is the server's mutable state: the resident stores, keyed
// by id. Queries hold no lock while running — the registry lock only guards
// the map, and stores themselves are immutable.
type storeRegistry struct {
	mu        sync.Mutex
	stores    map[string]*storeEntry
	nextID    int
	maxStores int
	dir       string // "" disables persistence

	// obs, when set, is attached to every built or restored store so their
	// query latencies and touch counters land on /metrics; tracer receives
	// the partition phases and build span of each /api/store/build.
	obs    *store.Obs
	tracer *obs.Tracer
}

func newStoreRegistry(maxStores int, dir string) *storeRegistry {
	if maxStores <= 0 {
		maxStores = defaultMaxStores
	}
	return &storeRegistry{stores: map[string]*storeEntry{}, maxStores: maxStores, dir: dir}
}

// StoreBuildRequest is the /api/store/build body: the same graph sources and
// partitioner selection as /api/partition, plus an optional store name.
type StoreBuildRequest struct {
	Method string         `json:"method"`
	Parts  int            `json:"parts"`
	Seed   int64          `json:"seed,omitempty"`
	Params map[string]any `json:"params,omitempty"`
	Edges  [][2]uint32    `json:"edges,omitempty"`
	RMAT   *RMATSpec      `json:"rmat,omitempty"`
	// Name is the store id; a fresh "sN" is assigned when empty.
	Name string `json:"name,omitempty"`
}

// ShardInfo summarizes one shard of a store.
type ShardInfo struct {
	Edges    int64 `json:"edges"`
	Vertices int   `json:"vertices"`
}

// StoreInfo describes a resident store.
type StoreInfo struct {
	Store             string      `json:"store"`
	Method            string      `json:"method"`
	Parts             int         `json:"parts"`
	NumVertices       uint32      `json:"numVertices"`
	NumEdges          int64       `json:"numEdges"`
	ReplicationFactor float64     `json:"replicationFactor"`
	Quality           *Quality    `json:"quality,omitempty"`
	Shards            []ShardInfo `json:"shards"`
	PartitionMS       float64     `json:"partitionMs,omitempty"`
	BuildMS           float64     `json:"buildMs,omitempty"`
	// Restored is set when the store was loaded from a snapshot instead of
	// built this run.
	Restored bool `json:"restored,omitempty"`
}

// StoreStatus is StoreInfo plus the live serving counters.
type StoreStatus struct {
	StoreInfo
	Metrics store.Metrics `json:"metrics"`
}

// NeighborsRequest queries one vertex or a batch.
type NeighborsRequest struct {
	Store    string   `json:"store"`
	Vertex   *uint32  `json:"vertex,omitempty"`
	Vertices []uint32 `json:"vertices,omitempty"`
}

// VertexNeighbors is one vertex's answer.
type VertexNeighbors struct {
	Vertex    uint32   `json:"vertex"`
	Degree    int64    `json:"degree"`
	Neighbors []uint32 `json:"neighbors"`
}

// NeighborsResponse reports the batch plus the cross-shard cost it paid.
type NeighborsResponse struct {
	Store          string            `json:"store"`
	Results        []VertexNeighbors `json:"results"`
	CrossShardHops int64             `json:"crossShardHops"`
	ElapsedMS      float64           `json:"elapsedMs"`
}

// KHopRequest asks for the k-hop neighborhood of a vertex.
type KHopRequest struct {
	Store  string `json:"store"`
	Vertex uint32 `json:"vertex"`
	K      int    `json:"k"`
}

// KHopResponse reports the traversal and its serving cost.
type KHopResponse struct {
	Store          string   `json:"store"`
	Source         uint32   `json:"source"`
	K              int      `json:"k"`
	Visited        int      `json:"visited"`
	Vertices       []uint32 `json:"vertices"`
	Depths         []int32  `json:"depths"`
	LevelSizes     []int64  `json:"levelSizes"`
	CrossShardHops int64    `json:"crossShardHops"`
	ShardTasks     int64    `json:"shardTasks"`
	ElapsedMS      float64  `json:"elapsedMs"`
}

// register wires the store/query endpoints onto mux.
func (sr *storeRegistry) register(mux *http.ServeMux, maxEdges int64, reqTimeout time.Duration) {
	mux.HandleFunc("POST /api/store/build", func(w http.ResponseWriter, r *http.Request) {
		var req StoreBuildRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
			return
		}
		ctx := r.Context()
		if reqTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, reqTimeout)
			defer cancel()
		}
		info, status, err := sr.buildStore(ctx, &req, maxEdges)
		if err != nil {
			body := errorBody{Error: err.Error()}
			var perr *methods.ParamError
			if errors.As(err, &perr) {
				body.Method = perr.Method
				body.DeclaredParams = perr.Declared
			}
			writeJSON(w, status, body)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("GET /api/store", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sr.list())
	})
	mux.HandleFunc("DELETE /api/store/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if !sr.drop(id) {
			writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no store %q", id)})
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /api/query/neighbors", func(w http.ResponseWriter, r *http.Request) {
		var req NeighborsRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
			return
		}
		ctx := r.Context()
		if reqTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, reqTimeout)
			defer cancel()
		}
		resp, status, err := sr.serveNeighbors(ctx, &req)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /api/query/khop", func(w http.ResponseWriter, r *http.Request) {
		var req KHopRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
			return
		}
		ctx := r.Context()
		if reqTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, reqTimeout)
			defer cancel()
		}
		resp, status, err := sr.serveKHop(ctx, &req)
		if err != nil {
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

func (sr *storeRegistry) buildStore(ctx context.Context, req *StoreBuildRequest, maxEdges int64) (*StoreInfo, int, error) {
	if req.Parts <= 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("parts must be positive, got %d", req.Parts)
	}
	if req.Method == "" {
		req.Method = "dne"
	}
	if req.Name != "" && !storeNameRE.MatchString(req.Name) {
		return nil, http.StatusBadRequest, fmt.Errorf("store name %q must match %s", req.Name, storeNameRE)
	}
	preq := &Request{Method: req.Method, Parts: req.Parts, Seed: req.Seed,
		Params: req.Params, Edges: req.Edges, RMAT: req.RMAT}
	g, err := buildGraph(preq, maxEdges)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if g.NumEdges() == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("graph has no edges")
	}
	spec := partition.Spec{NumParts: req.Parts, Seed: req.Seed, Params: req.Params}
	pr, spec, err := methods.New(req.Method, spec)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	res, err := pr.Partition(ctx, g, spec)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, http.StatusGatewayTimeout, fmt.Errorf("partitioning timed out: %w", err)
		}
		return nil, http.StatusInternalServerError, err
	}
	recordPartitionPhases(sr.tracer, pr.Name(), req.Parts, res.Stats.Phases)
	buildStart := time.Now()
	st, err := store.Build(g, res)
	if err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("materializing store: %w", err)
	}
	st.SetObs(sr.obs)
	sr.tracer.Record(obs.Span{
		Name:  "build",
		Cat:   "store",
		Start: buildStart.UnixNano(),
		Dur:   int64(time.Since(buildStart)),
		Attrs: map[string]string{"method": pr.Name(), "parts": fmt.Sprint(req.Parts)},
	})
	q := res.Quality
	info := StoreInfo{
		Method:            pr.Name(),
		Parts:             req.Parts,
		NumVertices:       st.NumVertices(),
		NumEdges:          st.NumEdges(),
		ReplicationFactor: st.ReplicationFactor(),
		Quality: &Quality{
			ReplicationFactor: q.ReplicationFactor,
			EdgeBalance:       q.EdgeBalance,
			VertexBalance:     q.VertexBalance,
			VertexCuts:        q.VertexCuts,
		},
		Shards:      shardInfos(st),
		PartitionMS: float64(res.Stats.Wall.Microseconds()) / 1000,
		BuildMS:     float64(time.Since(buildStart).Microseconds()) / 1000,
	}
	added, err := sr.add(req.Name, info, st)
	if err != nil {
		return nil, http.StatusConflict, err
	}
	return added, http.StatusOK, nil
}

func shardInfos(st *store.Store) []ShardInfo {
	out := make([]ShardInfo, st.NumShards())
	for s := range out {
		out[s] = ShardInfo{Edges: st.ShardEdges(s), Vertices: st.ShardVertices(s)}
	}
	return out
}

// add registers a built store under name (or a fresh id) and persists it.
func (sr *storeRegistry) add(name string, info StoreInfo, st *store.Store) (*StoreInfo, error) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if len(sr.stores) >= sr.maxStores {
		return nil, fmt.Errorf("server already holds %d stores; DELETE /api/store/{id} first", len(sr.stores))
	}
	if name == "" {
		for {
			sr.nextID++
			name = fmt.Sprintf("s%d", sr.nextID)
			if _, taken := sr.stores[name]; !taken {
				break
			}
		}
	} else if _, taken := sr.stores[name]; taken {
		return nil, fmt.Errorf("store %q already exists", name)
	}
	info.Store = name
	sr.stores[name] = &storeEntry{info: info, st: st}
	if sr.dir != "" {
		if err := sr.persist(name, info, st); err != nil {
			delete(sr.stores, name)
			return nil, fmt.Errorf("persisting store: %w", err)
		}
	}
	return &info, nil
}

func (sr *storeRegistry) get(id string) (*storeEntry, bool) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	e, ok := sr.stores[id]
	return e, ok
}

func (sr *storeRegistry) list() []StoreStatus {
	sr.mu.Lock()
	entries := make([]*storeEntry, 0, len(sr.stores))
	for _, e := range sr.stores {
		entries = append(entries, e)
	}
	sr.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].info.Store < entries[j].info.Store })
	out := make([]StoreStatus, len(entries))
	for i, e := range entries {
		out[i] = StoreStatus{StoreInfo: e.info, Metrics: e.st.Metrics()}
	}
	return out
}

func (sr *storeRegistry) drop(id string) bool {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	if _, ok := sr.stores[id]; !ok {
		return false
	}
	delete(sr.stores, id)
	if sr.dir != "" {
		os.Remove(filepath.Join(sr.dir, id+snapExt))
		os.Remove(filepath.Join(sr.dir, id+".json"))
	}
	return true
}

// persist writes the snapshot plus a JSON sidecar with build provenance. A
// failed write removes the partial snapshot so a later restart does not
// trip over a truncated file.
func (sr *storeRegistry) persist(name string, info StoreInfo, st *store.Store) error {
	if err := os.MkdirAll(sr.dir, 0o755); err != nil {
		return err
	}
	snapPath := filepath.Join(sr.dir, name+snapExt)
	f, err := os.Create(snapPath)
	if err != nil {
		return err
	}
	if err := store.WriteSnapshot(f, st); err != nil {
		f.Close()
		os.Remove(snapPath)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(snapPath)
		return err
	}
	meta, err := json.Marshal(info)
	if err == nil {
		err = os.WriteFile(filepath.Join(sr.dir, name+".json"), meta, 0o644)
	}
	if err != nil {
		os.Remove(snapPath)
		return err
	}
	return nil
}

// restore loads every snapshot under dir; corrupt files are skipped with an
// error list so one bad file doesn't take the server down.
func (sr *storeRegistry) restore() []error {
	if sr.dir == "" {
		return nil
	}
	entries, err := os.ReadDir(sr.dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return []error{err}
	}
	var errs []error
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), snapExt) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), snapExt)
		if !storeNameRE.MatchString(name) {
			continue
		}
		f, err := os.Open(filepath.Join(sr.dir, de.Name()))
		if err != nil {
			errs = append(errs, err)
			continue
		}
		st, err := store.ReadSnapshot(f)
		f.Close()
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", de.Name(), err))
			continue
		}
		st.SetObs(sr.obs)
		info := StoreInfo{
			Store:             name,
			Method:            "unknown",
			Parts:             st.NumShards(),
			NumVertices:       st.NumVertices(),
			NumEdges:          st.NumEdges(),
			ReplicationFactor: st.ReplicationFactor(),
			Shards:            shardInfos(st),
			Restored:          true,
		}
		if meta, err := os.ReadFile(filepath.Join(sr.dir, name+".json")); err == nil {
			var saved StoreInfo
			if json.Unmarshal(meta, &saved) == nil && saved.Method != "" {
				info.Method = saved.Method
				info.Quality = saved.Quality
			}
		}
		sr.mu.Lock()
		if len(sr.stores) < sr.maxStores {
			sr.stores[name] = &storeEntry{info: info, st: st}
			sr.mu.Unlock()
		} else {
			sr.mu.Unlock()
			errs = append(errs, fmt.Errorf("%s: not restored, server already holds %d stores (-max-stores)",
				de.Name(), sr.maxStores))
		}
	}
	return errs
}

func (sr *storeRegistry) serveNeighbors(ctx context.Context, req *NeighborsRequest) (*NeighborsResponse, int, error) {
	e, ok := sr.get(req.Store)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("no store %q (POST /api/store/build first)", req.Store)
	}
	var vs []uint32
	switch {
	case req.Vertex != nil && len(req.Vertices) > 0:
		return nil, http.StatusBadRequest, fmt.Errorf("supply vertex or vertices, not both")
	case req.Vertex != nil:
		vs = []uint32{*req.Vertex}
	case len(req.Vertices) > maxNeighborsBatch:
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("%d vertices exceed batch cap %d", len(req.Vertices), maxNeighborsBatch)
	case len(req.Vertices) > 0:
		vs = req.Vertices
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("supply vertex or vertices")
	}
	start := time.Now()
	resp := &NeighborsResponse{Store: req.Store, Results: make([]VertexNeighbors, 0, len(vs))}
	for _, v := range vs {
		if err := ctx.Err(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				return nil, http.StatusGatewayTimeout, err
			}
			return nil, http.StatusRequestTimeout, err
		}
		ns, err := e.st.Neighbors(graph.Vertex(v))
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		reps := e.st.Replicas(graph.Vertex(v))
		if len(reps) > 1 {
			resp.CrossShardHops += int64(len(reps) - 1)
		}
		out := make([]uint32, len(ns))
		for i, n := range ns {
			out[i] = uint32(n)
		}
		resp.Results = append(resp.Results, VertexNeighbors{
			Vertex: v, Degree: int64(len(ns)), Neighbors: out,
		})
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return resp, http.StatusOK, nil
}

func (sr *storeRegistry) serveKHop(ctx context.Context, req *KHopRequest) (*KHopResponse, int, error) {
	e, ok := sr.get(req.Store)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("no store %q (POST /api/store/build first)", req.Store)
	}
	if req.K < 0 || req.K > maxKHop {
		return nil, http.StatusBadRequest, fmt.Errorf("k %d outside [0,%d]", req.K, maxKHop)
	}
	start := time.Now()
	res, err := e.st.KHop(ctx, graph.Vertex(req.Vertex), req.K)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, http.StatusGatewayTimeout, err
		}
		return nil, http.StatusBadRequest, err
	}
	resp := &KHopResponse{
		Store:          req.Store,
		Source:         req.Vertex,
		K:              req.K,
		Visited:        len(res.Vertices),
		Vertices:       make([]uint32, len(res.Vertices)),
		Depths:         res.Depths,
		LevelSizes:     res.LevelSizes,
		CrossShardHops: res.CrossShardHops,
		ShardTasks:     res.ShardTasks,
		ElapsedMS:      float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, v := range res.Vertices {
		resp.Vertices[i] = uint32(v)
	}
	return resp, http.StatusOK, nil
}
