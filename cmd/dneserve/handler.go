package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/obs"
	"github.com/distributedne/dne/internal/partition"
)

// recordPartitionPhases emits one run's timed phases into the span ring,
// tiled back to back ending now, so GET /debug/trace?format=chrome shows
// where each partitioning request spent its time.
func recordPartitionPhases(tr *obs.Tracer, method string, parts int, phases []partition.PhaseTiming) {
	if tr == nil || len(phases) == 0 {
		return
	}
	ps := make([]obs.Phase, len(phases))
	for i, ph := range phases {
		ps[i] = obs.Phase{Name: ph.Name, Elapsed: ph.Elapsed}
	}
	tr.RecordPhases("partition", time.Now(), ps, map[string]string{
		"method": method,
		"parts":  strconv.Itoa(parts),
	})
}

// RMATSpec asks the server to generate the input graph.
type RMATSpec struct {
	Scale int   `json:"scale"`
	EF    int   `json:"ef"`
	Seed  int64 `json:"seed"`
}

// Request is the /api/partition body. Params carries arbitrary per-method
// parameters; they are validated against the method's registry descriptor
// and a mismatch returns 400 with the declared parameter list.
type Request struct {
	Method string         `json:"method"`
	Parts  int            `json:"parts"`
	Seed   int64          `json:"seed,omitempty"`
	Params map[string]any `json:"params,omitempty"`
	Edges  [][2]uint32    `json:"edges,omitempty"`
	RMAT   *RMATSpec      `json:"rmat,omitempty"`
	// EchoEdges returns the canonical (deduplicated, U<=V, sorted) edge
	// list the owners are aligned with.
	EchoEdges bool `json:"echoEdges,omitempty"`
}

// Quality is the metrics block of a Response.
type Quality struct {
	ReplicationFactor float64 `json:"replicationFactor"`
	EdgeBalance       float64 `json:"edgeBalance"`
	VertexBalance     float64 `json:"vertexBalance"`
	VertexCuts        int64   `json:"vertexCuts"`
}

// Phase is one timed phase of the run.
type Phase struct {
	Name      string  `json:"name"`
	ElapsedMS float64 `json:"elapsedMs"`
}

// RunStats is the execution-statistics block of a Response, generated from
// the v2 Result.Stats.
type RunStats struct {
	Phases       []Phase            `json:"phases,omitempty"`
	Iterations   int                `json:"iterations,omitempty"`
	CommBytes    int64              `json:"commBytes,omitempty"`
	CommMessages int64              `json:"commMessages,omitempty"`
	PeakMemBytes int64              `json:"peakMemBytes,omitempty"`
	MemScore     float64            `json:"memScore,omitempty"`
	SweptEdges   int64              `json:"sweptEdges,omitempty"`
	Extra        map[string]float64 `json:"extra,omitempty"`
}

// Response is the /api/partition reply.
type Response struct {
	Method    string      `json:"method"`
	Parts     int         `json:"parts"`
	NumVerts  uint32      `json:"numVertices"`
	NumEdges  int64       `json:"numEdges"`
	Owners    []int32     `json:"owners"`
	Edges     [][2]uint32 `json:"edges,omitempty"`
	Quality   Quality     `json:"quality"`
	ElapsedMS float64     `json:"elapsedMs"`
	Stats     RunStats    `json:"stats"`
}

type errorBody struct {
	Error string `json:"error"`
	// Method and DeclaredParams are set on parameter-validation failures so
	// clients can self-correct.
	Method         string              `json:"method,omitempty"`
	DeclaredParams []methods.ParamSpec `json:"declaredParams,omitempty"`
}

func newHandler(maxEdges int64, reqTimeout time.Duration) http.Handler {
	h, _ := newHandlerWithStores(maxEdges, reqTimeout, defaultMaxStores, "")
	return h
}

// newHandlerWithStores is newHandler plus store-registry configuration; the
// live graph lives in an ephemeral temp directory.
func newHandlerWithStores(maxEdges int64, reqTimeout time.Duration, maxStores int, storeDir string) (http.Handler, []error) {
	h, _, _, errs := newHandlerWithLive(maxEdges, reqTimeout, maxStores, storeDir, "", admissionLimits{})
	return h, errs
}

// newHandlerWithLive is the full constructor: maxStores bounds resident
// stores, a non-empty storeDir persists store snapshots across restarts,
// and a non-empty liveDir roots the durable live graph (restore errors from
// either are returned, not fatal). The returned liveService must be closed
// on shutdown to seal the live logs; until then the on-disk tail is open
// for appending and a second process cannot adopt the directory. The
// returned serverObs owns the registry behind GET /metrics and the span
// ring behind GET /debug/trace; main points the debug listener and the
// access log at it. adm bounds heavy-request admission (zero = machine-sized
// defaults); overload beyond its queue is shed with 503 + Retry-After while
// reads and probes keep answering.
func newHandlerWithLive(maxEdges int64, reqTimeout time.Duration, maxStores int, storeDir, liveDir string, adm admissionLimits) (http.Handler, *liveService, *serverObs, []error) {
	mux := http.NewServeMux()
	so := newServerObs()
	registry := newStoreRegistry(maxStores, storeDir)
	registry.obs = so.storeObs
	registry.tracer = so.tracer
	restoreErrs := registry.restore()
	registry.register(mux, maxEdges, reqTimeout)
	so.registerStoreGauges(registry)
	lsvc := newLiveService(liveDir)
	lsvc.reg = so.reg
	lsvc.latNeighbors = so.liveNeighbors
	lsvc.latKHop = so.liveKHop
	restoreErrs = append(restoreErrs, lsvc.restore()...)
	lsvc.register(mux, maxEdges, reqTimeout)
	so.register(mux)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /api/methods", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, methods.Descriptors())
	})
	mux.HandleFunc("POST /api/partition", func(w http.ResponseWriter, r *http.Request) {
		var req Request
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request: " + err.Error()})
			return
		}
		ctx := r.Context()
		if reqTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, reqTimeout)
			defer cancel()
		}
		resp, status, err := servePartition(ctx, &req, maxEdges, so.tracer)
		if err != nil {
			body := errorBody{Error: err.Error()}
			var perr *methods.ParamError
			if errors.As(err, &perr) {
				body.Method = perr.Method
				body.DeclaredParams = perr.Declared
				if body.DeclaredParams == nil {
					body.DeclaredParams = []methods.ParamSpec{}
				}
			}
			writeJSON(w, status, body)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	gate := newAdmission(adm)
	so.registerAdmissionMetrics(gate)
	// instrument wraps the gate so shed 503s land in the request metrics too.
	return so.instrument(gate.guard(mux)), lsvc, so, restoreErrs
}

func servePartition(ctx context.Context, req *Request, maxEdges int64, tr *obs.Tracer) (*Response, int, error) {
	if req.Parts <= 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("parts must be positive, got %d", req.Parts)
	}
	if req.Method == "" {
		req.Method = "dne"
	}
	g, err := buildGraph(req, maxEdges)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if g.NumEdges() == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("graph has no edges")
	}
	if g.NumEdges() > maxEdges {
		return nil, http.StatusRequestEntityTooLarge,
			fmt.Errorf("graph has %d edges, server cap is %d", g.NumEdges(), maxEdges)
	}
	spec := partition.Spec{NumParts: req.Parts, Seed: req.Seed, Params: req.Params}
	pr, spec, err := methods.New(req.Method, spec)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	res, err := pr.Partition(ctx, g, spec)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, http.StatusGatewayTimeout, fmt.Errorf("partitioning timed out: %w", err)
		}
		if errors.Is(err, context.Canceled) {
			return nil, http.StatusRequestTimeout, fmt.Errorf("request cancelled: %w", err)
		}
		return nil, http.StatusInternalServerError, err
	}
	pt := res.Partitioning
	if err := pt.Validate(g); err != nil {
		return nil, http.StatusInternalServerError, fmt.Errorf("internal: invalid partitioning: %w", err)
	}
	q := res.Quality
	st := res.Stats
	recordPartitionPhases(tr, pr.Name(), req.Parts, st.Phases)
	resp := &Response{
		Method:   pr.Name(),
		Parts:    req.Parts,
		NumVerts: g.NumVertices(),
		NumEdges: g.NumEdges(),
		Owners:   pt.Owner,
		Quality: Quality{
			ReplicationFactor: q.ReplicationFactor,
			EdgeBalance:       q.EdgeBalance,
			VertexBalance:     q.VertexBalance,
			VertexCuts:        q.VertexCuts,
		},
		ElapsedMS: float64(st.Wall.Microseconds()) / 1000,
		Stats: RunStats{
			Iterations:   st.Iterations,
			CommBytes:    st.CommBytes,
			CommMessages: st.CommMessages,
			PeakMemBytes: st.PeakMemBytes,
			MemScore:     st.MemScore(g.NumEdges()),
			SweptEdges:   st.SweptEdges,
			Extra:        st.Extra,
		},
	}
	for _, ph := range st.Phases {
		resp.Stats.Phases = append(resp.Stats.Phases,
			Phase{Name: ph.Name, ElapsedMS: float64(ph.Elapsed.Microseconds()) / 1000})
	}
	if req.EchoEdges {
		resp.Edges = make([][2]uint32, g.NumEdges())
		for i, e := range g.Edges() {
			resp.Edges[i] = [2]uint32{e.U, e.V}
		}
	}
	return resp, http.StatusOK, nil
}

func buildGraph(req *Request, maxEdges int64) (*graph.Graph, error) {
	switch {
	case len(req.Edges) > 0 && req.RMAT != nil:
		return nil, fmt.Errorf("supply either edges or rmat, not both")
	case len(req.Edges) > 0:
		if int64(len(req.Edges)) > maxEdges {
			return nil, fmt.Errorf("%d edges exceed server cap %d", len(req.Edges), maxEdges)
		}
		edges := make([]graph.Edge, len(req.Edges))
		for i, e := range req.Edges {
			edges[i] = graph.Edge{U: e[0], V: e[1]}
		}
		return graph.FromEdges(0, edges), nil
	case req.RMAT != nil:
		s := req.RMAT
		if s.Scale < 1 || s.Scale > 24 {
			return nil, fmt.Errorf("rmat scale %d outside [1,24]", s.Scale)
		}
		if s.EF < 1 || s.EF > 1024 {
			return nil, fmt.Errorf("rmat edge factor %d outside [1,1024]", s.EF)
		}
		if est := int64(1) << s.Scale * int64(s.EF); est > maxEdges {
			return nil, fmt.Errorf("rmat spec generates ~%d edges, server cap is %d", est, maxEdges)
		}
		return gen.RMAT(s.Scale, s.EF, s.Seed), nil
	}
	return nil, fmt.Errorf("supply edges or an rmat spec")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
