package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestAdmissionGateShedsDeterministically drives the gate with a blocking
// downstream handler: one request executing, one queued, and the next
// arrival must be shed immediately with 503 + Retry-After, while ungated
// reads keep answering.
func TestAdmissionGateShedsDeterministically(t *testing.T) {
	gate := newAdmission(admissionLimits{MaxInflight: 1, MaxQueue: 1, MaxWait: 30 * time.Second})
	unblock := make(chan struct{})
	entered := make(chan struct{}, 8)
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if heavyRequest(r) {
			entered <- struct{}{}
			<-unblock
		}
		w.WriteHeader(http.StatusOK)
	})
	h := gate.guard(next)

	do := func(method, path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, path, strings.NewReader("{}")))
		return rec
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); do("POST", "/api/partition") }() // takes the slot
	<-entered

	wg.Add(1)
	go func() { defer wg.Done(); do("POST", "/api/partition") }() // queues
	waitFor(t, func() bool { return gate.queued.Load() == 1 })

	// Queue full: the third heavy request is shed synchronously.
	rec := do("POST", "/api/live/ingest")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated gate returned %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if gate.shedFull.Load() != 1 {
		t.Fatalf("shedFull = %d, want 1", gate.shedFull.Load())
	}

	// Reads bypass the gate even while it is saturated.
	if rec := do("GET", "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("ungated read returned %d while gate saturated", rec.Code)
	}
	if rec := do("GET", "/metrics"); rec.Code != http.StatusOK {
		t.Fatalf("metrics returned %d while gate saturated", rec.Code)
	}

	close(unblock)
	wg.Wait()
}

// TestAdmissionGateQueueTimeout: a queued request that cannot get a slot
// within MaxWait turns into a fast 503 instead of waiting forever.
func TestAdmissionGateQueueTimeout(t *testing.T) {
	gate := newAdmission(admissionLimits{MaxInflight: 1, MaxQueue: 4, MaxWait: 20 * time.Millisecond})
	unblock := make(chan struct{})
	entered := make(chan struct{}, 1)
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-unblock
		w.WriteHeader(http.StatusOK)
	})
	h := gate.guard(next)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/partition", strings.NewReader("{}")))
	}()
	<-entered

	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/partition", strings.NewReader("{}")))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request returned %d, want 503", rec.Code)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("shed took %v, want ~MaxWait", d)
	}
	if gate.shedTimeout.Load() != 1 {
		t.Fatalf("shedTimeout = %d, want 1", gate.shedTimeout.Load())
	}
	close(unblock)
}

// TestAdmissionOverloadEndToEnd saturates the real handler at 2x capacity:
// the response mix must be only 200s and 503s, every 503 must carry
// Retry-After, and /metrics must stay readable and report the sheds.
func TestAdmissionOverloadEndToEnd(t *testing.T) {
	h, _, _, errs := newHandlerWithLive(5_000_000, time.Minute, defaultMaxStores, "", "",
		admissionLimits{MaxInflight: 1, MaxQueue: 1, MaxWait: time.Millisecond})
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	const clients = 16
	body := `{"method":"dne","parts":4,"rmat":{"scale":12,"ef":8,"seed":7}}`
	codes := make(chan int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(srv.URL+"/api/partition", "application/json", strings.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
				codes <- -2
				return
			}
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	var ok, shed int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("unexpected outcome %d (only 200/503 allowed)", c)
		}
	}
	if ok == 0 {
		t.Fatal("no request was served under overload")
	}
	if shed == 0 {
		t.Fatal("2x overload shed nothing (queue bounds not enforced)")
	}
	t.Logf("overload mix: %d served, %d shed", ok, shed)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body = string(b)
	if !strings.Contains(body, "dne_http_shed_total") {
		t.Fatal("/metrics does not expose dne_http_shed_total after shedding")
	}
	if !strings.Contains(body, "dne_http_admission_capacity") {
		t.Fatal("/metrics does not expose admission capacity")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
