package main

import (
	"encoding/json"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/distributedne/dne/internal/cluster"
	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/obs"
	"github.com/distributedne/dne/internal/store"
)

// serverObs is the server's observability spine: one registry behind
// GET /metrics, one ring-buffered tracer behind GET /debug/trace, and the
// pre-resolved hot-path handles (store query instruments, live query
// latency) so request paths never take the registry lock.
type serverObs struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	storeObs      *store.Obs
	liveNeighbors *obs.Histogram
	liveKHop      *obs.Histogram

	start time.Time

	// accessLog, when set (before the server starts serving), receives one
	// JSON line per request.
	accessLog *log.Logger
}

// traceCapacity bounds the span ring: enough for many partition runs'
// phases plus maintenance spans, small enough to dump interactively.
const traceCapacity = 4096

func newServerObs() *serverObs {
	so := &serverObs{
		reg:    obs.NewRegistry(),
		tracer: obs.NewTracer(traceCapacity),
		start:  time.Now(),
	}
	so.storeObs = store.NewObs(so.reg)
	so.liveNeighbors = so.reg.DurationHistogram("dne_live_query_duration_seconds",
		"Live-epoch query latency by endpoint.", "kind", "neighbors")
	so.liveKHop = so.reg.DurationHistogram("dne_live_query_duration_seconds",
		"Live-epoch query latency by endpoint.", "kind", "khop")
	cluster.RegisterMetrics(so.reg)
	dne.RegisterMetrics(so.reg)
	graph.RegisterStreamMetrics(so.reg)
	so.registerRuntimeMetrics()
	return so
}

func (so *serverObs) registerRuntimeMetrics() {
	so.reg.GaugeFunc("dne_go_goroutines", "Live goroutines.",
		func(emit func(v float64, kv ...string)) {
			emit(float64(runtime.NumGoroutine()))
		})
	so.reg.GaugeFunc("dne_go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func(emit func(v float64, kv ...string)) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			emit(float64(ms.HeapAlloc))
		})
	so.reg.GaugeFunc("dne_go_heap_sys_bytes", "Heap memory obtained from the OS.",
		func(emit func(v float64, kv ...string)) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			emit(float64(ms.HeapSys))
		})
	so.reg.CounterFunc("dne_go_gc_runs_total", "Completed GC cycles.",
		func(emit func(v float64, kv ...string)) {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			emit(float64(ms.NumGC))
		})
	so.reg.GaugeFunc("dne_process_uptime_seconds", "Seconds since the process started.",
		func(emit func(v float64, kv ...string)) {
			emit(time.Since(so.start).Seconds())
		})
}

// registerStoreGauges exposes the resident-store registry: store count and
// the per-shard touch counters of every resident store, so shard skew is
// visible on /metrics without polling GET /api/store.
func (so *serverObs) registerStoreGauges(sr *storeRegistry) {
	so.reg.GaugeFunc("dne_store_resident", "Resident query stores.",
		func(emit func(v float64, kv ...string)) {
			sr.mu.Lock()
			n := len(sr.stores)
			sr.mu.Unlock()
			emit(float64(n))
		})
	so.reg.GaugeFunc("dne_store_shard_touches",
		"Shard fetches per resident store and shard (resets when a store is dropped).",
		func(emit func(v float64, kv ...string)) {
			for _, st := range sr.list() {
				for s, n := range st.Metrics.PerShardTouches {
					emit(float64(n), "store", st.Store, "shard", strconv.Itoa(s))
				}
			}
		})
}

// register wires the exposition endpoints onto the serving mux.
func (so *serverObs) register(mux *http.ServeMux) {
	mux.HandleFunc("GET /metrics", so.serveMetrics)
	mux.HandleFunc("GET /debug/trace", so.serveTrace)
}

func (so *serverObs) serveMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = so.reg.WritePrometheus(w)
}

func (so *serverObs) serveTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "chrome" {
		_ = so.tracer.WriteChromeTrace(w)
		return
	}
	_ = so.tracer.WriteJSON(w)
}

// statusRecorder captures what the handler wrote so the middleware can
// label by status and account response bytes.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	n, err := sr.ResponseWriter.Write(p)
	sr.bytes += int64(n)
	return n, err
}

// routeLabel collapses request paths onto the server's route set so the
// metric label space stays bounded no matter what clients send.
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/metrics", "/debug/trace",
		"/api/methods", "/api/partition",
		"/api/store/build", "/api/store",
		"/api/query/neighbors", "/api/query/khop",
		"/api/live/ingest", "/api/live/stats", "/api/live/compact",
		"/api/live/query/neighbors", "/api/live/query/khop":
		return path
	}
	if strings.HasPrefix(path, "/api/store/") {
		return "/api/store/{id}"
	}
	return "other"
}

// accessEntry is one structured access-log line.
type accessEntry struct {
	Time     string  `json:"time"`
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Status   int     `json:"status"`
	DurMS    float64 `json:"durMs"`
	Bytes    int64   `json:"bytes"`
	RemoteIP string  `json:"remote,omitempty"`
}

// instrument wraps the serving mux: every request lands in the
// dne_http_request_duration_seconds{route,method} histogram and the
// dne_http_requests_total{route,method,code} counter, and — when an access
// logger is attached — emits one JSON line.
func (so *serverObs) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		d := time.Since(start)
		route := routeLabel(r.URL.Path)
		so.reg.DurationHistogram("dne_http_request_duration_seconds",
			"HTTP request latency by route.", "route", route, "method", r.Method).
			Observe(int64(d))
		so.reg.Counter("dne_http_requests_total",
			"HTTP requests by route and status.",
			"route", route, "method", r.Method, "code", strconv.Itoa(rec.status)).Inc()
		if so.accessLog != nil {
			line, err := json.Marshal(accessEntry{
				Time:     start.UTC().Format(time.RFC3339Nano),
				Method:   r.Method,
				Path:     r.URL.Path,
				Status:   rec.status,
				DurMS:    float64(d.Microseconds()) / 1000,
				Bytes:    rec.bytes,
				RemoteIP: r.RemoteAddr,
			})
			if err == nil {
				so.accessLog.Printf("%s", line)
			}
		}
	})
}
