package main

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// admissionLimits configures the bounded admission queue in front of the
// expensive endpoints. Zero values pick defaults sized to the machine.
type admissionLimits struct {
	// MaxInflight bounds concurrently executing heavy requests
	// (default 2×GOMAXPROCS).
	MaxInflight int
	// MaxQueue bounds requests waiting for an execution slot beyond
	// MaxInflight; arrivals past this are shed immediately with 503
	// (default 4×MaxInflight).
	MaxQueue int
	// MaxWait bounds how long a queued request waits before being shed
	// (default 2s). This keeps served latency bounded under overload: a
	// request either starts within MaxWait or turns into a fast 503.
	MaxWait time.Duration
}

func (al admissionLimits) withDefaults() admissionLimits {
	if al.MaxInflight <= 0 {
		al.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if al.MaxQueue <= 0 {
		al.MaxQueue = 4 * al.MaxInflight
	}
	if al.MaxWait <= 0 {
		al.MaxWait = 2 * time.Second
	}
	return al
}

// admission is a two-stage gate: a slot channel bounds execution
// concurrency, and an atomic counter bounds the waiting line. Load beyond
// slots+queue — or queued longer than MaxWait — is shed with 503 and a
// Retry-After hint instead of piling onto the goroutine scheduler until the
// whole server (including health and metrics) stops answering.
type admission struct {
	limits admissionLimits
	slots  chan struct{}
	queued atomic.Int64

	shedFull    atomic.Int64 // queue at capacity on arrival
	shedTimeout atomic.Int64 // waited MaxWait without a slot
	shedGone    atomic.Int64 // client gave up while queued
}

func newAdmission(limits admissionLimits) *admission {
	limits = limits.withDefaults()
	return &admission{
		limits: limits,
		slots:  make(chan struct{}, limits.MaxInflight),
	}
}

// admit blocks until an execution slot is free (bounded by MaxWait) and
// returns its release func, or reports why the request must be shed.
func (a *admission) admit(done <-chan struct{}) (release func(), shedReason string) {
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, ""
	default:
	}
	if a.queued.Add(1) > int64(a.limits.MaxQueue) {
		a.queued.Add(-1)
		a.shedFull.Add(1)
		return nil, "queue_full"
	}
	defer a.queued.Add(-1)
	t := time.NewTimer(a.limits.MaxWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, ""
	case <-t.C:
		a.shedTimeout.Add(1)
		return nil, "queue_timeout"
	case <-done:
		a.shedGone.Add(1)
		return nil, "client_gone"
	}
}

// heavyRequest reports whether a request runs real graph work and must pass
// the admission gate. Reads (health, metrics, traces, listings, stats) stay
// ungated so the server remains observable while it is shedding.
func heavyRequest(r *http.Request) bool {
	return r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/api/")
}

// guard wraps next with the admission gate. Shed responses are 503 with a
// Retry-After of the configured queue wait rounded up, so well-behaved
// clients back off for at least as long as the queue would have held them.
func (a *admission) guard(next http.Handler) http.Handler {
	retryAfter := strconv.Itoa(int((a.limits.MaxWait + time.Second - 1) / time.Second))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !heavyRequest(r) {
			next.ServeHTTP(w, r)
			return
		}
		release, reason := a.admit(r.Context().Done())
		if release == nil {
			w.Header().Set("Retry-After", retryAfter)
			writeJSON(w, http.StatusServiceUnavailable, errorBody{
				Error: fmt.Sprintf("server overloaded (%s): %d executing, %d queued; retry after %ss",
					reason, len(a.slots), a.queued.Load(), retryAfter),
			})
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}

// registerAdmissionMetrics exposes the gate on /metrics: current load,
// configured capacity, and every shed decision by reason.
func (so *serverObs) registerAdmissionMetrics(a *admission) {
	so.reg.GaugeFunc("dne_http_inflight",
		"Heavy requests currently executing.",
		func(emit func(v float64, kv ...string)) {
			emit(float64(len(a.slots)))
		})
	so.reg.GaugeFunc("dne_http_queue_depth",
		"Heavy requests waiting for an execution slot.",
		func(emit func(v float64, kv ...string)) {
			emit(float64(a.queued.Load()))
		})
	so.reg.GaugeFunc("dne_http_admission_capacity",
		"Configured admission bounds.",
		func(emit func(v float64, kv ...string)) {
			emit(float64(a.limits.MaxInflight), "kind", "inflight")
			emit(float64(a.limits.MaxQueue), "kind", "queue")
		})
	so.reg.CounterFunc("dne_http_shed_total",
		"Requests shed by the admission gate, by reason.",
		func(emit func(v float64, kv ...string)) {
			for _, e := range []struct {
				reason string
				v      int64
			}{
				{"queue_full", a.shedFull.Load()},
				{"queue_timeout", a.shedTimeout.Load()},
				{"client_gone", a.shedGone.Load()},
			} {
				if e.v > 0 {
					emit(float64(e.v), "reason", e.reason)
				}
			}
		})
}
