package main

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

func ingestBatch(t *testing.T, h http.Handler, req LiveIngestRequest) LiveIngestResponse {
	t.Helper()
	rec := doJSON(t, h, http.MethodPost, "/api/live/ingest", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	var resp LiveIngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func liveStats(t *testing.T, h http.Handler, checksum bool) LiveStatsResponse {
	t.Helper()
	path := "/api/live/stats"
	if checksum {
		path += "?checksum=1"
	}
	rec := doJSON(t, h, http.MethodGet, path, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d: %s", rec.Code, rec.Body)
	}
	var resp LiveStatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestLiveIngestStatsQuery(t *testing.T) {
	h, lsvc, _, errs := newHandlerWithLive(100_000, time.Minute, 2, "", t.TempDir(), admissionLimits{})
	if len(errs) != 0 {
		t.Fatalf("restore errors: %v", errs)
	}
	defer lsvc.close()

	// Queries before any ingest 404.
	if rec := doJSON(t, h, http.MethodGet, "/api/live/stats", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("stats before ingest: status %d", rec.Code)
	}
	// First ingest must declare parts.
	if rec := doJSON(t, h, http.MethodPost, "/api/live/ingest",
		LiveIngestRequest{Edges: [][2]uint32{{0, 1}}}); rec.Code != http.StatusBadRequest {
		t.Fatalf("partless first ingest: status %d: %s", rec.Code, rec.Body)
	}

	// ringEdges repeats the chord (i, i+n/2) from both endpoints; the live
	// graph dedups, so applied is the unique canonical edge count.
	edges := ringEdges(60)
	unique := map[[2]uint32]bool{}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		unique[[2]uint32{u, v}] = true
	}
	resp := ingestBatch(t, h, LiveIngestRequest{Parts: 4, Seed: 7, Edges: edges})
	if resp.Applied != len(unique) {
		t.Fatalf("applied %d of %d unique", resp.Applied, len(unique))
	}
	if resp.Stats.NumParts != 4 || resp.Stats.NumEdges != int64(len(unique)) {
		t.Fatalf("stats %+v", resp.Stats)
	}

	// Mismatched parts on a later batch conflict.
	if rec := doJSON(t, h, http.MethodPost, "/api/live/ingest",
		LiveIngestRequest{Parts: 8, Edges: [][2]uint32{{1, 3}}}); rec.Code != http.StatusConflict {
		t.Fatalf("mismatched parts: status %d: %s", rec.Code, rec.Body)
	}

	// Neighbors of vertex 0 on the 60-ring with chords: 1, 59, 30.
	v := uint32(0)
	rec := doJSON(t, h, http.MethodPost, "/api/live/query/neighbors", LiveNeighborsRequest{Vertex: &v})
	if rec.Code != http.StatusOK {
		t.Fatalf("neighbors status %d: %s", rec.Code, rec.Body)
	}
	var nresp LiveNeighborsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &nresp); err != nil {
		t.Fatal(err)
	}
	if len(nresp.Results) != 1 || nresp.Results[0].Degree != 3 {
		t.Fatalf("neighbors %+v", nresp.Results)
	}

	// Delete one ring edge and re-query: the degree drops.
	del := ingestBatch(t, h, LiveIngestRequest{Deletes: [][2]uint32{{0, 1}}})
	if del.Applied != 1 {
		t.Fatalf("delete applied %d", del.Applied)
	}
	rec = doJSON(t, h, http.MethodPost, "/api/live/query/neighbors", LiveNeighborsRequest{Vertex: &v})
	if err := json.Unmarshal(rec.Body.Bytes(), &nresp); err != nil {
		t.Fatal(err)
	}
	if nresp.Results[0].Degree != 2 {
		t.Fatalf("degree after delete %d, want 2", nresp.Results[0].Degree)
	}

	// KHop from 0 visits the whole (still connected) ring at depth 60.
	rec = doJSON(t, h, http.MethodPost, "/api/live/query/khop", LiveKHopRequest{Vertex: 0, K: 30})
	if rec.Code != http.StatusOK {
		t.Fatalf("khop status %d: %s", rec.Code, rec.Body)
	}
	var kresp LiveKHopResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &kresp); err != nil {
		t.Fatal(err)
	}
	if kresp.Visited != 60 {
		t.Fatalf("khop visited %d, want 60", kresp.Visited)
	}
	if kresp.Epoch == 0 {
		t.Fatal("khop served by epoch 0 (never published)")
	}

	stats := liveStats(t, h, true)
	if stats.Checksum == "" {
		t.Fatal("no checksum with ?checksum=1")
	}
	if stats.Stats.NumEdges != int64(len(unique)-1) {
		t.Fatalf("stats edges %d, want %d", stats.Stats.NumEdges, len(unique)-1)
	}
}

func TestLiveCompactAndChecksumStability(t *testing.T) {
	h, lsvc, _, _ := newHandlerWithLive(100_000, time.Minute, 2, "", t.TempDir(), admissionLimits{})
	defer lsvc.close()
	ingestBatch(t, h, LiveIngestRequest{Parts: 4, Seed: 7, Edges: ringEdges(100)})

	before := liveStats(t, h, true)
	rec := doJSON(t, h, http.MethodPost, "/api/live/compact", LiveCompactRequest{})
	if rec.Code != http.StatusOK {
		t.Fatalf("compact status %d: %s", rec.Code, rec.Body)
	}
	var cresp LiveCompactResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cresp); err != nil {
		t.Fatal(err)
	}
	if cresp.Stats.Compactions != 1 || cresp.Stats.OverlayAdds != 0 {
		t.Fatalf("compact stats %+v", cresp.Stats)
	}
	after := liveStats(t, h, true)
	if after.Checksum != before.Checksum {
		t.Fatalf("checksum drifted across compaction: %s vs %s", after.Checksum, before.Checksum)
	}
}

func TestLiveRestartResumesGraph(t *testing.T) {
	dir := t.TempDir()
	h1, lsvc1, _, _ := newHandlerWithLive(100_000, time.Minute, 2, "", dir, admissionLimits{})
	ingestBatch(t, h1, LiveIngestRequest{Parts: 4, Seed: 7, Edges: ringEdges(80)})
	ingestBatch(t, h1, LiveIngestRequest{Deletes: [][2]uint32{{0, 1}, {5, 6}}})
	sum1 := liveStats(t, h1, true)
	if err := lsvc1.close(); err != nil {
		t.Fatal(err)
	}

	// A second handler over the same (sealed) directory replays the logs and
	// serves the identical graph.
	h2, lsvc2, _, errs := newHandlerWithLive(100_000, time.Minute, 2, "", dir, admissionLimits{})
	if len(errs) != 0 {
		t.Fatalf("restore errors: %v", errs)
	}
	defer lsvc2.close()
	sum2 := liveStats(t, h2, true)
	if sum2.Checksum != sum1.Checksum || sum2.Stats.NumEdges != sum1.Stats.NumEdges {
		t.Fatalf("restart drifted: %s/%d vs %s/%d",
			sum2.Checksum, sum2.Stats.NumEdges, sum1.Checksum, sum1.Stats.NumEdges)
	}
}

func TestLiveIngestBatchCap(t *testing.T) {
	h, lsvc, _, _ := newHandlerWithLive(10, time.Minute, 2, "", t.TempDir(), admissionLimits{})
	defer lsvc.close()
	rec := doJSON(t, h, http.MethodPost, "/api/live/ingest",
		LiveIngestRequest{Parts: 2, Edges: ringEdges(20)})
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized batch: status %d", rec.Code)
	}
}
