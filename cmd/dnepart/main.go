// Command dnepart partitions a graph with any of the repository's
// partitioners and reports quality metrics.
//
// Usage:
//
//	dnepart -in graph.txt -parts 16 [-method dne] [-out owners.txt]
//	dnepart -shard-dir shards/ -parts 4 -method dne -checksum
//	dnepart -stream -shard-dir shards/ -parts 16 -method hdrf -checksum
//	dnepart -rmat 16 -ef 16 -parts 16 -method dne -params lambda=0.05,alpha=1.2
//	dnepart -list-methods
//
// The input is a whitespace edge list ("u v" per line, '#' comments), a
// directory of EShard files written by gengraph -shards (-shard-dir), a
// DNE1 binary edge list (-bin, graph.WriteBinary's format), or a synthetic
// RMAT graph (-rmat). -checksum prints the partitioning checksum, directly
// comparable with the RESULT line of a multi-process dneworker run over the
// same graph/seed/parts.
//
// -stream partitions without materializing the input: the shard dir,
// binary file or generator becomes a graph.Source consumed by the method's
// streaming core (stream-capable methods run in dense-state + chunk
// memory; the rest materialize transparently and say so in the stats). For
// canonical shard sets (gengraph -canonical) the streamed partitioning is
// bit-identical to the in-memory run — same checksum. Shard directories
// may be raw (*.esh) or compressed (*.esz, gengraph -compress).
//
// -pipeline (with -stream) runs the pipelined engine: decode-ahead
// prefetching and the single-pass spill-backed shuffle overlap the run's
// stages on bounded channels. Output is bit-identical to plain -stream —
// same checksum, same quality — only faster from cold disk. The stream
// report adds edges/sec and, for disk sources, bytes read.
//
// The output file (optional) has one "u v partition" line per edge; -save
// writes the compact binary partitioning (partition.ReadBinary loads it
// back). Methods and their parameters come from the method registry;
// -list-methods prints the generated table.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

func main() {
	var (
		in       = flag.String("in", "", "input edge-list file")
		bin      = flag.String("bin", "", "input DNE1 binary edge list (graph.WriteBinary) instead of -in")
		shardDir = flag.String("shard-dir", "", "input directory of EShard files (gengraph -shards) instead of -in")
		out      = flag.String("out", "", "output assignment file (u v part)")
		save     = flag.String("save", "", "output binary partitioning file")
		parts    = flag.Int("parts", 16, "number of partitions")
		method   = flag.String("method", "dne", "partitioning method (see -list-methods)")
		rmat     = flag.Int("rmat", 0, "generate RMAT graph with 2^scale vertices instead of -in")
		ef       = flag.Int("ef", 16, "edge factor for -rmat")
		seed     = flag.Int64("seed", 42, "random seed")
		params   = flag.String("params", "", "per-method params as k=v[,k=v...], e.g. alpha=1.2,lambda=0.05")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		checksum = flag.Bool("checksum", false, "print the partitioning checksum (comparable with dneworker's RESULT line)")
		stream   = flag.Bool("stream", false, "partition from the input as an edge source, without materializing a graph")
		pipeline = flag.Bool("pipeline", false, "with -stream: overlap decode/shuffle/assign stages (bit-identical output, faster from cold disk)")
		list     = flag.Bool("list-methods", false, "print the registered methods and their parameters")
	)
	flag.Parse()

	if *list {
		printMethods(os.Stdout)
		return
	}

	spec := partition.NewSpec(*parts, *seed)
	var err error
	spec.Params, err = parseParams(*params)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res *partition.Result
	var g *graph.Graph // nil on the stream path
	var numEdges int64
	methodName := *method
	if *stream {
		if *out != "" {
			fatal(fmt.Errorf("-out needs the materialized graph; drop it or drop -stream"))
		}
		src, err := loadSource(*bin, *shardDir, *rmat, *ef, *seed)
		if err != nil {
			fatal(err)
		}
		info := src.Info()
		ec := "?" // unknown until a pass (generator/binary sources)
		if info.NumEdges > 0 {
			ec = fmt.Sprint(info.NumEdges)
		}
		engine := "sequential"
		partitionSource := methods.PartitionSource
		if *pipeline {
			engine = "pipelined"
			partitionSource = methods.PartitionSourcePiped
		}
		fmt.Printf("source: %s |V|=%d |E|=%s engine=%s\n", info.Name, info.NumVertices, ec, engine)
		res, err = partitionSource(ctx, methodName, src, spec)
		if err != nil {
			fatal(err)
		}
		numEdges = int64(len(res.Partitioning.Owner))
		if mb, ok := res.Stats.Extra["materialized_graph_bytes"]; ok {
			fmt.Printf("note: %s cannot stream; source materialized (%.1f MB)\n",
				methodName, mb/(1<<20))
		}
	} else {
		if *pipeline {
			fatal(fmt.Errorf("-pipeline requires -stream"))
		}
		g, err = loadGraph(*in, *bin, *shardDir, *rmat, *ef, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph: |V|=%d |E|=%d avg-degree=%.2f max-degree=%d\n",
			g.NumVertices(), g.NumEdges(), g.AvgDegree(), g.MaxDegree())
		numEdges = g.NumEdges()
		var pr partition.Partitioner
		pr, spec, err = methods.New(methodName, spec)
		if err != nil {
			fatal(err)
		}
		res, err = pr.Partition(ctx, g, spec)
		if err != nil {
			fatal(err)
		}
		if err := res.Partitioning.Validate(g); err != nil {
			fatal(err)
		}
	}
	pt := res.Partitioning
	q := res.Quality
	st := res.Stats
	fmt.Printf("method: %s  partitions: %d  elapsed: %v\n", st.Method, *parts, st.Wall)
	for _, ph := range st.Phases {
		fmt.Printf("  phase %-10s %v\n", ph.Name, ph.Elapsed)
	}
	fmt.Printf("replication factor: %.4f\n", q.ReplicationFactor)
	fmt.Printf("edge balance: %.4f  vertex balance: %.4f  vertex cuts: %d\n",
		q.EdgeBalance, q.VertexBalance, q.VertexCuts)
	if st.PeakMemBytes > 0 {
		fmt.Printf("peak accounted memory: %.1f MB (%.1f B/edge)\n",
			float64(st.PeakMemBytes)/(1<<20), st.MemScore(numEdges))
	}
	if *stream {
		if pt := st.PartitionTime(); pt > 0 && numEdges > 0 {
			fmt.Printf("throughput: %.0f edges/sec (partition time %v)\n",
				float64(numEdges)/pt.Seconds(), pt)
		}
		if br, ok := st.Extra["source_bytes_read"]; ok && br > 0 {
			fmt.Printf("bytes read from source: %.1f MB\n", br/(1<<20))
		}
	}
	if st.Iterations > 0 {
		fmt.Printf("iterations: %d  comm: %.1f MB\n",
			st.Iterations, float64(st.CommBytes)/(1<<20))
	}
	if *checksum {
		fmt.Printf("partitioning checksum: %#x\n", partition.Checksum(pt.Owner))
	}
	if *out != "" {
		if err := writeAssignment(*out, g, pt); err != nil {
			fatal(err)
		}
		fmt.Printf("assignment written to %s\n", *out)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := partition.WriteBinary(f, pt); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("binary partitioning written to %s\n", *save)
	}
}

// parseParams parses "k=v,k=v" into a Spec params map. Values decode as
// bool, int or float; the registry coerces them against the method's
// declared kinds.
func parseParams(s string) (map[string]any, error) {
	if s == "" {
		return nil, nil
	}
	params := map[string]any{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -params entry %q (want k=v)", kv)
		}
		switch {
		case v == "true" || v == "false":
			params[k] = v == "true"
		default:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -params value %q for %q", v, k)
			}
			params[k] = f
		}
	}
	return params, nil
}

// printMethods renders the registry as an aligned table, generated from the
// descriptors.
func printMethods(w *os.File) {
	for _, d := range methods.Descriptors() {
		cap := ""
		if d.Streams {
			cap = " [streams]"
		}
		fmt.Fprintf(w, "%-10s %s%s\n", d.Name, d.Summary, cap)
		if len(d.Aliases) > 0 {
			fmt.Fprintf(w, "%-10s aliases: %s\n", "", strings.Join(d.Aliases, ", "))
		}
		for _, p := range d.Params {
			fmt.Fprintf(w, "%-10s   -params %s=<%s> (default %v) %s\n", "", p.Name, p.Kind, p.Default, p.Doc)
		}
	}
}

func loadGraph(in, bin, shardDir string, rmat, ef int, seed int64) (*graph.Graph, error) {
	if rmat > 0 {
		return gen.RMAT(rmat, ef, seed), nil
	}
	if shardDir != "" {
		shard, err := graph.ReadShardDir(shardDir, nil)
		if err != nil {
			return nil, err
		}
		return graph.FromPacked(shard.NumVertices, shard.Packed), nil
	}
	if bin != "" {
		src, err := graph.BinarySource(bin)
		if err != nil {
			return nil, err
		}
		return graph.FromSource(src, nil)
	}
	if in == "" {
		return nil, fmt.Errorf("either -in, -bin, -shard-dir or -rmat is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

// loadSource builds the -stream input: a shard directory, a binary edge
// list, or the RMAT generator itself (nothing is ever materialized here).
func loadSource(bin, shardDir string, rmat, ef int, seed int64) (graph.Source, error) {
	switch {
	case shardDir != "":
		return graph.DirSource(shardDir)
	case bin != "":
		return graph.BinarySource(bin)
	case rmat > 0:
		return gen.RMATSource(rmat, ef, seed), nil
	}
	return nil, fmt.Errorf("-stream needs -shard-dir, -bin or -rmat")
}

func writeAssignment(path string, g *graph.Graph, pt *partition.Partitioning) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i, e := range g.Edges() {
		fmt.Fprintf(w, "%d %d %d\n", e.U, e.V, pt.Owner[i])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnepart:", err)
	os.Exit(1)
}
