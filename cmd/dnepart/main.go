// Command dnepart partitions a graph with any of the repository's
// partitioners and reports quality metrics.
//
// Usage:
//
//	dnepart -in graph.txt -parts 16 [-method dne] [-out owners.txt]
//	dnepart -shard-dir shards/ -parts 4 -method dne -checksum
//	dnepart -rmat 16 -ef 16 -parts 16 -method dne -params lambda=0.05,alpha=1.2
//	dnepart -list-methods
//
// The input is a whitespace edge list ("u v" per line, '#' comments), a
// directory of EShard files written by gengraph -shards (-shard-dir), or a
// synthetic RMAT graph (-rmat). -checksum prints the partitioning checksum,
// directly comparable with the RESULT line of a multi-process dneworker run
// over the same graph/seed/parts. The output file (optional) has one
// "u v partition" line per edge; -save writes the compact binary
// partitioning (partition.ReadBinary loads it back). Methods and their
// parameters come from the method registry; -list-methods prints the
// generated table.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	_ "github.com/distributedne/dne/internal/methods/all"
	"github.com/distributedne/dne/internal/partition"
)

func main() {
	var (
		in       = flag.String("in", "", "input edge-list file")
		shardDir = flag.String("shard-dir", "", "input directory of EShard files (gengraph -shards) instead of -in")
		out      = flag.String("out", "", "output assignment file (u v part)")
		save     = flag.String("save", "", "output binary partitioning file")
		parts    = flag.Int("parts", 16, "number of partitions")
		method   = flag.String("method", "dne", "partitioning method (see -list-methods)")
		rmat     = flag.Int("rmat", 0, "generate RMAT graph with 2^scale vertices instead of -in")
		ef       = flag.Int("ef", 16, "edge factor for -rmat")
		seed     = flag.Int64("seed", 42, "random seed")
		params   = flag.String("params", "", "per-method params as k=v[,k=v...], e.g. alpha=1.2,lambda=0.05")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
		checksum = flag.Bool("checksum", false, "print the partitioning checksum (comparable with dneworker's RESULT line)")
		list     = flag.Bool("list-methods", false, "print the registered methods and their parameters")
	)
	flag.Parse()

	if *list {
		printMethods(os.Stdout)
		return
	}

	g, err := loadGraph(*in, *shardDir, *rmat, *ef, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: |V|=%d |E|=%d avg-degree=%.2f max-degree=%d\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree(), g.MaxDegree())

	spec := partition.NewSpec(*parts, *seed)
	spec.Params, err = parseParams(*params)
	if err != nil {
		fatal(err)
	}
	pr, spec, err := methods.New(*method, spec)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	res, err := pr.Partition(ctx, g, spec)
	if err != nil {
		fatal(err)
	}
	pt := res.Partitioning
	if err := pt.Validate(g); err != nil {
		fatal(err)
	}
	q := res.Quality
	st := res.Stats
	fmt.Printf("method: %s  partitions: %d  elapsed: %v\n", pr.Name(), *parts, st.Wall)
	for _, ph := range st.Phases {
		fmt.Printf("  phase %-10s %v\n", ph.Name, ph.Elapsed)
	}
	fmt.Printf("replication factor: %.4f\n", q.ReplicationFactor)
	fmt.Printf("edge balance: %.4f  vertex balance: %.4f  vertex cuts: %d\n",
		q.EdgeBalance, q.VertexBalance, q.VertexCuts)
	if st.Iterations > 0 {
		fmt.Printf("iterations: %d  comm: %.1f MB  mem score: %.1f B/edge\n",
			st.Iterations, float64(st.CommBytes)/(1<<20), st.MemScore(g.NumEdges()))
	}
	if *checksum {
		fmt.Printf("partitioning checksum: %#x\n", partition.Checksum(pt.Owner))
	}
	if *out != "" {
		if err := writeAssignment(*out, g, pt); err != nil {
			fatal(err)
		}
		fmt.Printf("assignment written to %s\n", *out)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := partition.WriteBinary(f, pt); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("binary partitioning written to %s\n", *save)
	}
}

// parseParams parses "k=v,k=v" into a Spec params map. Values decode as
// bool, int or float; the registry coerces them against the method's
// declared kinds.
func parseParams(s string) (map[string]any, error) {
	if s == "" {
		return nil, nil
	}
	params := map[string]any{}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("bad -params entry %q (want k=v)", kv)
		}
		switch {
		case v == "true" || v == "false":
			params[k] = v == "true"
		default:
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -params value %q for %q", v, k)
			}
			params[k] = f
		}
	}
	return params, nil
}

// printMethods renders the registry as an aligned table, generated from the
// descriptors.
func printMethods(w *os.File) {
	for _, d := range methods.Descriptors() {
		fmt.Fprintf(w, "%-10s %s\n", d.Name, d.Summary)
		if len(d.Aliases) > 0 {
			fmt.Fprintf(w, "%-10s aliases: %s\n", "", strings.Join(d.Aliases, ", "))
		}
		for _, p := range d.Params {
			fmt.Fprintf(w, "%-10s   -params %s=<%s> (default %v) %s\n", "", p.Name, p.Kind, p.Default, p.Doc)
		}
	}
}

func loadGraph(in, shardDir string, rmat, ef int, seed int64) (*graph.Graph, error) {
	if rmat > 0 {
		return gen.RMAT(rmat, ef, seed), nil
	}
	if shardDir != "" {
		shard, err := graph.ReadShardDir(shardDir, nil)
		if err != nil {
			return nil, err
		}
		return graph.FromPacked(shard.NumVertices, shard.Packed), nil
	}
	if in == "" {
		return nil, fmt.Errorf("either -in, -shard-dir or -rmat is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

func writeAssignment(path string, g *graph.Graph, pt *partition.Partitioning) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i, e := range g.Edges() {
		fmt.Fprintf(w, "%d %d %d\n", e.U, e.V, pt.Owner[i])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnepart:", err)
	os.Exit(1)
}
