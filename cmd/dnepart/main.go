// Command dnepart partitions a graph with any of the repository's
// partitioners and reports quality metrics.
//
// Usage:
//
//	dnepart -in graph.txt -parts 16 [-method dne] [-out owners.txt]
//	dnepart -rmat 16 -ef 16 -parts 16 -method dne
//
// The input is a whitespace edge list ("u v" per line, '#' comments); -rmat
// generates a synthetic graph instead. The output file (optional) has one
// "u v partition" line per edge; -save writes the compact binary
// partitioning (partition.ReadBinary loads it back). Methods: dne, ne, sne,
// hdrf, fennel, random, grid, dbh, hybrid, oblivious, ginger, sheep,
// spinner, xtrapulp, metis.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/distributedne/dne/internal/dne"
	"github.com/distributedne/dne/internal/gen"
	"github.com/distributedne/dne/internal/graph"
	"github.com/distributedne/dne/internal/methods"
	"github.com/distributedne/dne/internal/partition"
)

func main() {
	var (
		in     = flag.String("in", "", "input edge-list file")
		out    = flag.String("out", "", "output assignment file (u v part)")
		save   = flag.String("save", "", "output binary partitioning file")
		parts  = flag.Int("parts", 16, "number of partitions")
		method = flag.String("method", "dne", "partitioning method")
		rmat   = flag.Int("rmat", 0, "generate RMAT graph with 2^scale vertices instead of -in")
		ef     = flag.Int("ef", 16, "edge factor for -rmat")
		seed   = flag.Int64("seed", 42, "random seed")
		alpha  = flag.Float64("alpha", 1.1, "imbalance factor (dne/ne/sne)")
		lambda = flag.Float64("lambda", 0.1, "expansion factor (dne)")
	)
	flag.Parse()

	g, err := loadGraph(*in, *rmat, *ef, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: |V|=%d |E|=%d avg-degree=%.2f max-degree=%d\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree(), g.MaxDegree())

	pr, err := methods.New(*method, methods.Options{Seed: *seed, Alpha: *alpha, Lambda: *lambda})
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	pt, err := pr.Partition(g, *parts)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if err := pt.Validate(g); err != nil {
		fatal(err)
	}
	q := pt.Measure(g)
	fmt.Printf("method: %s  partitions: %d  elapsed: %v\n", pr.Name(), *parts, elapsed)
	fmt.Printf("replication factor: %.4f\n", q.ReplicationFactor)
	fmt.Printf("edge balance: %.4f  vertex balance: %.4f  vertex cuts: %d\n",
		q.EdgeBalance, q.VertexBalance, q.VertexCuts)
	if d, ok := pr.(*dne.Partitioner); ok && d.Last != nil {
		fmt.Printf("iterations: %d  comm: %.1f MB  mem score: %.1f B/edge\n",
			d.Last.Iterations, float64(d.Last.CommBytes)/(1<<20), d.Last.MemScore(g.NumEdges()))
	}
	if *out != "" {
		if err := writeAssignment(*out, g, pt); err != nil {
			fatal(err)
		}
		fmt.Printf("assignment written to %s\n", *out)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := partition.WriteBinary(f, pt); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("binary partitioning written to %s\n", *save)
	}
}

func loadGraph(in string, rmat, ef int, seed int64) (*graph.Graph, error) {
	if rmat > 0 {
		return gen.RMAT(rmat, ef, seed), nil
	}
	if in == "" {
		return nil, fmt.Errorf("either -in or -rmat is required")
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeList(f)
}

func writeAssignment(path string, g *graph.Graph, pt *partition.Partitioning) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	for i, e := range g.Edges() {
		fmt.Fprintf(w, "%d %d %d\n", e.U, e.V, pt.Owner[i])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dnepart:", err)
	os.Exit(1)
}
