// Command expbench regenerates the paper's tables and figures.
//
// Usage:
//
//	expbench -list
//	expbench -exp fig8 [-shift 2] [-seed 7] [-pr-iters 100] [-quick]
//	expbench -exp all
//
// Each experiment prints the same rows/series the paper reports (§5–§7), at
// the reduced default scales described in DESIGN.md. -shift scales the
// synthetic stand-ins by powers of two toward (or away from) paper size.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"github.com/distributedne/dne/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiment ids")
		shift   = flag.Int("shift", 0, "scale datasets by 2^shift vertices")
		seed    = flag.Int64("seed", 42, "random seed")
		prIters = flag.Int("pr-iters", 20, "PageRank iterations for table5 (paper: 100)")
		quick   = flag.Bool("quick", false, "restrict sweeps to fewer points")
		jsonOut = flag.String("json", "", "write a machine-readable snapshot here (exp=perf: BENCH_dne.json)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range experiments.All {
			fmt.Printf("  %-11s %s\n", e.ID, e.Desc)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := experiments.Options{
		Ctx:      ctx,
		Shift:    *shift,
		Seed:     *seed,
		PRIters:  *prIters,
		Quick:    *quick,
		JSONPath: *jsonOut,
		Out:      os.Stdout,
	}
	run := func(id string) bool {
		for _, e := range experiments.All {
			if e.ID == id {
				if err := e.Run(opts); err != nil {
					fmt.Fprintf(os.Stderr, "expbench: %s: %v\n", id, err)
					os.Exit(1)
				}
				return true
			}
		}
		return false
	}
	if *exp == "all" {
		for i, e := range experiments.All {
			if i > 0 {
				fmt.Println("\n============================================================")
			}
			run(e.ID)
		}
		return
	}
	if !run(*exp) {
		fmt.Fprintf(os.Stderr, "expbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
}
