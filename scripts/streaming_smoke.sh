#!/usr/bin/env bash
# Streaming smoke test: gengraph writes canonical shard stripes, dnepart
# -stream partitions them with HDRF under a GOMEMLIMIT far below the
# materialized graph size, and the checksum must equal the in-memory run's
# for the same graph, seed and partition count. This is the end-to-end
# proof of the source-based input API: a single-pass method consumes the
# shard directory in dense-state + chunk memory and still reproduces the
# in-memory partitioning bit for bit.
set -euo pipefail

SCALE=${SCALE:-16}
EF=${EF:-16}
SEED=${SEED:-7}
PARTS=${PARTS:-16}
SHARDS=${SHARDS:-4}
# The scale-16/ef-16 graph materializes to ~26 MB of accounted CSR+edges
# alone; the stream run is held far under that. GOMEMLIMIT is a soft limit,
# so a regression back to materializing would thrash rather than die — the
# hard assertion is TestStreamingMemoryBudget's accounting; this job proves
# the real binary stays comfortable under the budget AND matches checksums.
STREAM_GOMEMLIMIT=${STREAM_GOMEMLIMIT:-24MiB}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== building CLIs"
go build -o "$workdir" ./cmd/gengraph ./cmd/dnepart ./cmd/graphstat

echo "== writing $SHARDS canonical shard stripes (rmat scale=$SCALE ef=$EF seed=$SEED)"
"$workdir/gengraph" -kind rmat -scale "$SCALE" -ef "$EF" -seed "$SEED" \
  -shards "$SHARDS" -canonical -shard-dir "$workdir/shards"

echo "== shard set inspects in place"
"$workdir/graphstat" -shard-dir "$workdir/shards" > "$workdir/stat.log"
head -3 "$workdir/stat.log"

echo "== in-memory reference partitioning (hdrf)"
want=$("$workdir/dnepart" -rmat "$SCALE" -ef "$EF" -seed "$SEED" -parts "$PARTS" \
  -method hdrf -checksum | awk '/^partitioning checksum:/ {print $3}')
[ -n "$want" ] || { echo "FAIL: no in-memory checksum"; exit 1; }
echo "   checksum: $want"

echo "== streamed partitioning from shard dir under GOMEMLIMIT=$STREAM_GOMEMLIMIT"
GOMEMLIMIT=$STREAM_GOMEMLIMIT "$workdir/dnepart" -stream -shard-dir "$workdir/shards" \
  -seed "$SEED" -parts "$PARTS" -method hdrf -checksum | tee "$workdir/stream.log"
got=$(awk '/^partitioning checksum:/ {print $3}' "$workdir/stream.log")
[ -n "$got" ] || { echo "FAIL: no streamed checksum"; exit 1; }

if grep -q "cannot stream" "$workdir/stream.log"; then
  echo "FAIL: hdrf fell back to materializing the source"
  exit 1
fi

echo "== in-memory: $want"
echo "== streamed:  $got"
if [ "$want" != "$got" ]; then
  echo "FAIL: streamed partitioning differs from in-memory run"
  exit 1
fi
echo "OK: identical partitioning, streamed in O(dense-state + chunk) memory"
