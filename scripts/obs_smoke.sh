#!/usr/bin/env bash
# Observability smoke test: dneserve starts with a debug listener, a store
# is built and queried, the live graph ingests and compacts, and then
# /metrics must expose nonzero store, live, HTTP and runtime families in
# valid Prometheus text format; /debug/trace must hold partition phase
# spans, and the pprof index must answer on the debug port. Finally loadgen
# -scrape runs its in-process scrape loop and must report a drift line —
# the end-to-end proof that every layer's instrumentation is wired through.
set -euo pipefail

ADDR=${ADDR:-127.0.0.1:18801}
DEBUG_ADDR=${DEBUG_ADDR:-127.0.0.1:18802}
SCALE=${SCALE:-8}
EF=${EF:-8}
PARTS=${PARTS:-4}

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then
    kill -9 "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building CLIs"
go build -o "$workdir" ./cmd/dneserve ./cmd/loadgen

echo "== starting dneserve with -debug-addr"
"$workdir/dneserve" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" -live-dir "$workdir/live" \
  > /dev/null 2> "$workdir/access.log" &
server_pid=$!
for _ in $(seq 1 100); do
  code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/healthz" || true)
  [ "$code" = "200" ] && break
  sleep 0.1
done
[ "$code" = "200" ] || { echo "FAIL: server did not come up"; cat "$workdir/access.log"; exit 1; }

echo "== partition + store build + queries + live ingest/compact"
curl -sf -X POST "http://$ADDR/api/partition" \
  -d "{\"method\":\"dne\",\"parts\":$PARTS,\"rmat\":{\"scale\":$SCALE,\"ef\":$EF,\"seed\":7}}" > /dev/null
curl -sf -X POST "http://$ADDR/api/store/build" \
  -d "{\"method\":\"dne\",\"parts\":$PARTS,\"name\":\"smoke\",\"rmat\":{\"scale\":$SCALE,\"ef\":$EF,\"seed\":7}}" > /dev/null
for v in 0 1 2 3 4 5 6 7; do
  curl -sf -X POST "http://$ADDR/api/query/neighbors" -d "{\"store\":\"smoke\",\"vertex\":$v}" > /dev/null
  curl -sf -X POST "http://$ADDR/api/query/khop" -d "{\"store\":\"smoke\",\"vertex\":$v,\"k\":2}" > /dev/null
done
curl -sf -X POST "http://$ADDR/api/live/ingest" \
  -d "{\"parts\":$PARTS,\"edges\":[[0,1],[1,2],[2,3],[3,0],[0,2],[1,3]]}" > /dev/null
curl -sf -X POST "http://$ADDR/api/live/query/khop" -d '{"vertex":0,"k":2}' > /dev/null
curl -sf -X POST "http://$ADDR/api/live/compact" -d '{}' > /dev/null

echo "== scraping /metrics"
curl -sf "http://$ADDR/metrics" > "$workdir/metrics.txt"

metric_value() {
  # Sum every sample of the family (all label sets).
  awk -v fam="$1" '$1 ~ "^" fam "({|$)" { s += $NF } END { printf "%d\n", s }' "$workdir/metrics.txt"
}
assert_nonzero() {
  v=$(metric_value "$1")
  if [ "${v:-0}" -le 0 ]; then
    echo "FAIL: family $1 is zero or missing on /metrics"
    grep -m5 "^$1" "$workdir/metrics.txt" || true
    exit 1
  fi
  echo "   $1 = $v"
}

# Format sanity: every non-comment line is "name{labels} value" or "name value".
if awk '!/^#/ && NF && !/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eEInf]+$/ { print; bad=1 } END { exit bad }' \
     "$workdir/metrics.txt"; then
  echo "   exposition format OK ($(grep -c . "$workdir/metrics.txt") lines)"
else
  echo "FAIL: malformed exposition lines above"; exit 1
fi

assert_nonzero "dne_store_query_duration_seconds_count"
assert_nonzero "dne_store_shard_touches_total"
assert_nonzero "dne_live_edges"
assert_nonzero "dne_live_apply_duration_seconds_count"
assert_nonzero "dne_live_query_duration_seconds_count"
assert_nonzero "dne_http_requests_total"
assert_nonzero "dne_go_goroutines"

echo "== structured access log"
if ! grep -q '"path":"/api/query/neighbors"' "$workdir/access.log"; then
  echo "FAIL: no structured access-log line for the query endpoint"
  tail -5 "$workdir/access.log"; exit 1
fi
echo "   access log carries method/path/status/duration JSON lines"

echo "== debug listener: pprof + trace"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://$DEBUG_ADDR/debug/pprof/")
[ "$code" = "200" ] || { echo "FAIL: pprof index returned $code"; exit 1; }
curl -sf "http://$DEBUG_ADDR/debug/trace" > "$workdir/trace.json"
grep -q '"cat": *"partition"' "$workdir/trace.json" \
  || { echo "FAIL: trace ring has no partition spans"; head -c 400 "$workdir/trace.json"; exit 1; }
curl -sf "http://$DEBUG_ADDR/debug/trace?format=chrome" | grep -q '"traceEvents"' \
  || { echo "FAIL: chrome trace dump malformed"; exit 1; }
echo "   pprof answers, trace ring holds partition spans (json + chrome)"

echo "== loadgen -scrape drift report"
"$workdir/loadgen" -methods dne -parts "$PARTS" -rmat-scale "$SCALE" -rmat-ef "$EF" \
  -queries 2000 -workers 2 -scrape -scrape-interval 50ms > "$workdir/loadgen.log"
grep -q '^scrape: .*drift' "$workdir/loadgen.log" \
  || { echo "FAIL: loadgen -scrape printed no drift line"; cat "$workdir/loadgen.log"; exit 1; }
grep '^scrape:' "$workdir/loadgen.log"

echo "OK: /metrics exposes nonzero store/live/http/runtime families, pprof and trace serve, scrape drift reported"
