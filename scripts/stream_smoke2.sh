#!/usr/bin/env bash
# Pipelined-stream smoke test: gengraph writes compressed (ESZ1) canonical
# shard stripes, dnepart -stream -pipeline partitions them with HDRF under
# a GOMEMLIMIT far below the materialized graph size, and the checksum must
# equal the in-memory run's for the same graph, seed and partition count.
# This is the end-to-end proof of the pipelined engine: decode-ahead
# prefetching and the single-pass spill-backed shuffle overlap the stages,
# the input comes off disk at a several-fold compression, and the
# partitioning is still bit-identical to the sequential in-memory run.
set -euo pipefail

SCALE=${SCALE:-16}
EF=${EF:-16}
SEED=${SEED:-7}
PARTS=${PARTS:-16}
SHARDS=${SHARDS:-4}
# Same budget discipline as streaming_smoke.sh: the pipelined engine adds
# only bounded buffers (prefetch ring + one shuffle bucket + spill-file
# writers), so it must fit the same limit the sequential stream run does.
STREAM_GOMEMLIMIT=${STREAM_GOMEMLIMIT:-24MiB}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== building CLIs"
go build -o "$workdir" ./cmd/gengraph ./cmd/dnepart ./cmd/graphstat

echo "== writing $SHARDS compressed canonical stripes (rmat scale=$SCALE ef=$EF seed=$SEED)"
"$workdir/gengraph" -kind rmat -scale "$SCALE" -ef "$EF" -seed "$SEED" \
  -shards "$SHARDS" -canonical -compress -shard-dir "$workdir/shards"
ls "$workdir/shards" | grep -q '\.esz$' || { echo "FAIL: no *.esz files written"; exit 1; }

echo "== compressed set inspects in place, ratio >= 2x"
"$workdir/graphstat" -shard-dir "$workdir/shards" > "$workdir/stat.log"
head -7 "$workdir/stat.log"
ratio=$(awk '/^# total/ {sub(/x$/, "", $NF); print $NF}' "$workdir/stat.log")
[ -n "$ratio" ] || { echo "FAIL: graphstat printed no total compression ratio"; exit 1; }
awk -v r="$ratio" 'BEGIN { exit (r >= 2.0) ? 0 : 1 }' \
  || { echo "FAIL: compression ratio ${ratio}x < 2x"; exit 1; }

echo "== in-memory reference partitioning (hdrf)"
want=$("$workdir/dnepart" -rmat "$SCALE" -ef "$EF" -seed "$SEED" -parts "$PARTS" \
  -method hdrf -checksum | awk '/^partitioning checksum:/ {print $3}')
[ -n "$want" ] || { echo "FAIL: no in-memory checksum"; exit 1; }
echo "   checksum: $want"

echo "== pipelined streamed partitioning under GOMEMLIMIT=$STREAM_GOMEMLIMIT"
GOMEMLIMIT=$STREAM_GOMEMLIMIT "$workdir/dnepart" -stream -pipeline \
  -shard-dir "$workdir/shards" -seed "$SEED" -parts "$PARTS" \
  -method hdrf -checksum | tee "$workdir/piped.log"
got=$(awk '/^partitioning checksum:/ {print $3}' "$workdir/piped.log")
[ -n "$got" ] || { echo "FAIL: no pipelined checksum"; exit 1; }

grep -q "engine=pipelined" "$workdir/piped.log" \
  || { echo "FAIL: run did not report the pipelined engine"; exit 1; }
grep -q "cannot stream" "$workdir/piped.log" \
  && { echo "FAIL: hdrf fell back to materializing the source"; exit 1; }
grep -q "^throughput: " "$workdir/piped.log" \
  || { echo "FAIL: no edges/sec throughput line"; exit 1; }
grep -q "^bytes read from source: " "$workdir/piped.log" \
  || { echo "FAIL: no bytes-read line"; exit 1; }

echo "== in-memory: $want"
echo "== pipelined: $got"
if [ "$want" != "$got" ]; then
  echo "FAIL: pipelined partitioning differs from in-memory run"
  exit 1
fi
echo "OK: identical partitioning from ${ratio}x-compressed stripes, pipelined, under GOMEMLIMIT"
