#!/usr/bin/env bash
# Distributed smoke test: gengraph writes shard files, four dneworker
# processes partition them over TCP on localhost, and the resulting
# partitioning checksum must equal the in-process run's (dnepart -checksum)
# for the same graph, seed and partition count. This is the end-to-end proof
# that the sharded data plane — shard files, shuffle, per-rank subgraphs,
# gob-TCP collectives — reproduces the in-process partitioning bit for bit.
set -euo pipefail

SCALE=${SCALE:-12}
EF=${EF:-8}
SEED=${SEED:-7}
PARTS=${PARTS:-4}
SHARDS=${SHARDS:-8}
ADDR=${ADDR:-127.0.0.1:17791}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== building CLIs"
go build -o "$workdir" ./cmd/gengraph ./cmd/dnepart ./cmd/dneworker

echo "== writing $SHARDS shards (rmat scale=$SCALE ef=$EF seed=$SEED)"
"$workdir/gengraph" -kind rmat -scale "$SCALE" -ef "$EF" -seed "$SEED" \
  -shards "$SHARDS" -shard-dir "$workdir/shards"

echo "== in-process reference partitioning"
want=$("$workdir/dnepart" -rmat "$SCALE" -ef "$EF" -seed "$SEED" -parts "$PARTS" \
  -method dne -checksum | awk '/^partitioning checksum:/ {print $3}')
[ -n "$want" ] || { echo "FAIL: no in-process checksum"; exit 1; }
echo "   checksum: $want"

echo "== $PARTS dneworker processes over shards"
pids=()
for rank in $(seq 1 $((PARTS - 1))); do
  "$workdir/dneworker" -rank "$rank" -size "$PARTS" -addr "$ADDR" \
    -shard-dir "$workdir/shards" -seed "$SEED" &
  pids+=($!)
done
"$workdir/dneworker" -rank 0 -size "$PARTS" -addr "$ADDR" \
  -shard-dir "$workdir/shards" -seed "$SEED" | tee "$workdir/rank0.log"
for pid in "${pids[@]}"; do wait "$pid"; done

got=$(awk '/RESULT/ {for (i=1;i<=NF;i++) if ($i ~ /^checksum=/) {sub("checksum=","",$i); print $i}}' \
  "$workdir/rank0.log")
[ -n "$got" ] || { echo "FAIL: no RESULT checksum from rank 0"; exit 1; }

echo "== in-process:   $want"
echo "== multiprocess: $got"
if [ "$want" != "$got" ]; then
  echo "FAIL: multi-process shard partitioning differs from in-process run"
  exit 1
fi
echo "OK: identical partitioning across data planes"
