#!/usr/bin/env bash
# Live smoke test: gengraph emits an edge stream, curl ingests it through
# dneserve's /api/live/ingest in batches under a GOMEMLIMIT while a
# concurrent client runs k-hop queries against the pinned-epoch read path,
# then the graph is compacted+rebalanced and its replication factor is
# compared against a batch HDRF partitioning of the identical graph (the
# RF-drift bound). Finally the server is stopped with SIGTERM — the
# graceful path that seals the append-only logs — and restarted on the
# same directory: the (edge, owner) checksum must survive the restart
# bit for bit.
set -euo pipefail

SCALE=${SCALE:-13}
EF=${EF:-16}
SEED=${SEED:-7}
PARTS=${PARTS:-8}
BATCH=${BATCH:-4096}
ADDR=${ADDR:-127.0.0.1:18793}
SERVE_GOMEMLIMIT=${SERVE_GOMEMLIMIT:-64MiB}
DRIFT_BOUND=${DRIFT_BOUND:-2.0}

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  if [ -n "$server_pid" ]; then
    kill -9 "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building CLIs"
go build -o "$workdir" ./cmd/gengraph ./cmd/dneserve ./cmd/dnepart

echo "== generating edge stream (rmat scale=$SCALE ef=$EF seed=$SEED)"
"$workdir/gengraph" -kind rmat -scale "$SCALE" -ef "$EF" -seed "$SEED" > "$workdir/edges.txt"

# Pack the stream into JSON ingest bodies, one per line. Every body carries
# parts+seed: the first creates the live graph, the rest must match.
awk -v batch="$BATCH" -v parts="$PARTS" -v seed="$SEED" '
  /^#/ { next }
  { es = es (n++ ? "," : "") "[" $1 "," $2 "]"
    if (n == batch) { print "{\"parts\":" parts ",\"seed\":" seed ",\"edges\":[" es "]}"; es = ""; n = 0 } }
  END { if (n) print "{\"parts\":" parts ",\"seed\":" seed ",\"edges\":[" es "]}" }
' "$workdir/edges.txt" > "$workdir/batches.jsonl"
echo "   $(wc -l < "$workdir/batches.jsonl") ingest batches of <=$BATCH edges"

start_server() {
  GOMEMLIMIT=$SERVE_GOMEMLIMIT "$workdir/dneserve" -addr "$ADDR" -live-dir "$workdir/live" \
    >> "$workdir/serve.log" 2>&1 &
  server_pid=$!
  for _ in $(seq 1 100); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$ADDR/api/live/stats" || true)
    [ "$code" != "000" ] && [ -n "$code" ] && return 0
    sleep 0.1
  done
  echo "FAIL: server did not come up"; cat "$workdir/serve.log"; exit 1
}

echo "== starting dneserve under GOMEMLIMIT=$SERVE_GOMEMLIMIT"
start_server

# Concurrent reader: k-hop queries against whatever epoch is published
# while ingestion and compaction run underneath it.
khop_ok=0
khop_loop() {
  local ok=0
  while [ ! -f "$workdir/stop" ]; do
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/api/live/query/khop" \
      -d "{\"vertex\":$((RANDOM % 64)),\"k\":2}" || true)
    [ "$code" = "200" ] && ok=$((ok + 1))
    sleep 0.02
  done
  echo "$ok" > "$workdir/khop_ok"
}

echo "== ingesting via /api/live/ingest with a concurrent k-hop client"
head -1 "$workdir/batches.jsonl" | curl -sf -X POST "http://$ADDR/api/live/ingest" -d @- > /dev/null
khop_loop &
khop_pid=$!
tail -n +2 "$workdir/batches.jsonl" | while IFS= read -r body; do
  curl -sf -X POST "http://$ADDR/api/live/ingest" -d "$body" > /dev/null
done

echo "== compact + bounded rebalance under the same concurrent client"
curl -sf -X POST "http://$ADDR/api/live/compact" -d '{"rebalanceBudget":5000}' > "$workdir/compact.json"
touch "$workdir/stop"
wait "$khop_pid"
khop_ok=$(cat "$workdir/khop_ok")
echo "   concurrent k-hop queries answered: $khop_ok"
if [ "$khop_ok" -lt 10 ]; then
  echo "FAIL: reader starved while ingest/compaction ran ($khop_ok answers)"; exit 1
fi

curl -sf "http://$ADDR/api/live/stats?checksum=1" > "$workdir/stats.json"
live_sum=$(grep -o '"checksum":"[^"]*"' "$workdir/stats.json" | cut -d'"' -f4)
live_rf=$(grep -o '"replication_factor":[0-9.]*' "$workdir/stats.json" | head -1 | cut -d: -f2)
live_edges=$(grep -o '"num_edges":[0-9]*' "$workdir/stats.json" | head -1 | cut -d: -f2)
[ -n "$live_sum" ] && [ -n "$live_rf" ] || { echo "FAIL: missing checksum/RF in stats"; cat "$workdir/stats.json"; exit 1; }
echo "   live: |E|=$live_edges RF=$live_rf checksum=$live_sum"

echo "== batch reference: in-memory HDRF on the identical graph"
"$workdir/dnepart" -rmat "$SCALE" -ef "$EF" -seed "$SEED" -parts "$PARTS" -method hdrf > "$workdir/batch.log"
batch_rf=$(awk '/^replication factor:/ {print $3}' "$workdir/batch.log")
batch_edges=$(sed -n 's/^graph: .*|E|=\([0-9]*\).*/\1/p' "$workdir/batch.log")
echo "   batch: |E|=$batch_edges RF=$batch_rf"
if [ "$live_edges" != "$batch_edges" ]; then
  echo "FAIL: live graph holds $live_edges edges, canonical graph has $batch_edges"; exit 1
fi
if ! awk -v l="$live_rf" -v b="$batch_rf" -v bound="$DRIFT_BOUND" \
     'BEGIN { d = l / b; printf "   rf drift: %.3fx (bound %.1fx)\n", d, bound; exit !(d < bound) }'; then
  echo "FAIL: live RF drifted beyond ${DRIFT_BOUND}x of batch HDRF"; exit 1
fi

echo "== SIGTERM (graceful: seals logs), then restart on the same directory"
kill -TERM "$server_pid"
wait "$server_pid" || true
server_pid=""
start_server
curl -sf "http://$ADDR/api/live/stats?checksum=1" > "$workdir/stats2.json"
resumed_sum=$(grep -o '"checksum":"[^"]*"' "$workdir/stats2.json" | cut -d'"' -f4)
echo "   resumed checksum: $resumed_sum"
if [ "$live_sum" != "$resumed_sum" ]; then
  echo "FAIL: restart drifted: $live_sum != $resumed_sum"; exit 1
fi
echo "OK: ingested live under GOMEMLIMIT with non-blocking reads, RF within ${DRIFT_BOUND}x of batch, restart bit-identical"
