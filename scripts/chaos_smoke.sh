#!/usr/bin/env bash
# Chaos smoke test: a 4-process fault-tolerant TCP partition run survives a
# SIGKILL. gengraph writes shard files; a fault-free FT run records the
# reference checksum; then the same run is repeated with one worker
# SIGKILLed mid-superstep (as soon as its first checkpoint lands) and
# restarted. The survivors pause at the superstep barrier, the restarted
# worker rejoins through the router's rejoin window, reloads its checkpoint,
# and the final partitioning checksum must be bit-identical to the
# fault-free run's.
set -euo pipefail

SCALE=${SCALE:-13}
EF=${EF:-8}
SEED=${SEED:-7}
PARTS=${PARTS:-4}
SHARDS=${SHARDS:-8}
ADDR=${ADDR:-127.0.0.1:17795}
VICTIM=${VICTIM:-2}
TIMEOUT=${TIMEOUT:-180} # per-worker wall clock bound (seconds)

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== building CLIs"
go build -o "$workdir" ./cmd/gengraph ./cmd/dneworker

echo "== writing $SHARDS shards (rmat scale=$SCALE ef=$EF seed=$SEED)"
"$workdir/gengraph" -kind rmat -scale "$SCALE" -ef "$EF" -seed "$SEED" \
  -shards "$SHARDS" -shard-dir "$workdir/shards"

worker() { # worker <rank> <ckpt-dir> <logfile>
  timeout -k 10 "$TIMEOUT" \
    "$workdir/dneworker" -rank "$1" -size "$PARTS" -addr "$ADDR" \
    -shard-dir "$workdir/shards" -seed "$SEED" \
    -ckpt-dir "$2" -ckpt-every 1 -max-restarts 5 -rejoin-window 60s \
    >"$3" 2>&1
}

checksum_from() {
  awk '/RESULT/ {for (i=1;i<=NF;i++) if ($i ~ /^checksum=/) {sub("checksum=","",$i); print $i}}' "$1"
}

echo "== fault-free fault-tolerant run (reference)"
mkdir -p "$workdir/ckpt-ref"
pids=()
for rank in $(seq 1 $((PARTS - 1))); do
  worker "$rank" "$workdir/ckpt-ref" "$workdir/ref-r$rank.log" &
  pids+=($!)
done
worker 0 "$workdir/ckpt-ref" "$workdir/ref-r0.log"
for pid in "${pids[@]}"; do wait "$pid"; done
want=$(checksum_from "$workdir/ref-r0.log")
[ -n "$want" ] || { echo "FAIL: no reference checksum"; cat "$workdir/ref-r0.log"; exit 1; }
echo "   reference checksum: $want"

echo "== chaos run: SIGKILL rank $VICTIM mid-superstep, then restart it"
ckpt="$workdir/ckpt-chaos"
mkdir -p "$ckpt"
pids=()
for rank in $(seq 0 $((PARTS - 1))); do
  worker "$rank" "$ckpt" "$workdir/chaos-r$rank.log" &
  pids+=($!)
done

# Wait for the victim's first superstep checkpoint — proof it is mid-run —
# then SIGKILL the dneworker process itself (not the shell wrapper around
# it): no Bye frame, no flush, the hard-crash shape.
printf -v state_glob '%s/state-r%03d-*.dnc' "$ckpt" "$VICTIM"
for i in $(seq 1 300); do
  if compgen -G "$state_glob" >/dev/null; then break; fi
  sleep 0.05
done
compgen -G "$state_glob" >/dev/null || { echo "FAIL: victim wrote no checkpoint"; exit 1; }
# Anchor the match at the binary path so the `timeout` wrapper (whose
# cmdline also contains the dneworker invocation) is not the one killed.
victim_pid=$(pgrep -f "^$workdir/dneworker -rank $VICTIM " | head -1)
[ -n "$victim_pid" ] || { echo "FAIL: victim dneworker already gone"; cat "$workdir/chaos-r$VICTIM.log"; exit 1; }
kill -KILL "$victim_pid"
echo "   SIGKILLed rank $VICTIM (pid $victim_pid) after its first checkpoint"

# Restart the victim: it redials with backoff, the router re-forms the mesh,
# and every rank resumes from the latest checkpoint all ranks share.
worker "$VICTIM" "$ckpt" "$workdir/chaos-r$VICTIM-restarted.log" &
restart_pid=$!

for pid in "${pids[@]}"; do wait "$pid" || true; done
wait "$restart_pid"

got=$(checksum_from "$workdir/chaos-r0.log")
[ -n "$got" ] || { echo "FAIL: no chaos-run checksum"; cat "$workdir/chaos-r0.log"; exit 1; }
# The kill must have actually interrupted the mesh: rank 0 (a survivor)
# logs its rejoin. Without this, a kill that silently missed would make the
# checksum comparison pass vacuously.
grep -q "rejoining after transport loss" "$workdir/chaos-r0.log" \
  || { echo "FAIL: rank 0 never observed a transport loss (kill missed?)"; tail -5 "$workdir/chaos-r0.log"; exit 1; }

echo "== fault-free: $want"
echo "== recovered:  $got"
if [ "$want" != "$got" ]; then
  echo "FAIL: recovered run's checksum differs from the fault-free run"
  for f in "$workdir"/chaos-r*.log; do echo "--- $f"; tail -5 "$f"; done
  exit 1
fi
echo "OK: SIGKILL + restart recovered bit-identically via checkpoint+rejoin"
